"""Section 5.1.2: injection into pipeline latches only.

Paper: "ReStore covers a larger percentage of failures originating from
pipeline latch errors. In the 100 instruction latency bin, the symptoms
collectively cover 75% of the failures" (vs ~50% for all state), because
latches carry the instructions in flight while SRAM contents sit idle.
"""

from repro.util.tables import format_table

from .conftest import emit, run_shared_uarch_campaign


def test_latch_only_coverage(benchmark):
    result = benchmark.pedantic(run_shared_uarch_campaign, rounds=1, iterations=1)
    latch_view = result.latch_only_view()

    all_coverage = result.coverage_of_failures(100)
    latch_coverage = latch_view.coverage_of_failures(100)
    text = "\n\n".join(
        [
            latch_view.table(
                (25, 50, 100, 200, 500, 1000, 2000),
                title="Section 5.1.2: coverage vs interval (latches only)",
            ),
            format_table(
                ["population", "paper coverage @100", "measured"],
                [
                    ["all state", "~50%",
                     f"{all_coverage.proportion:.1%} ±{all_coverage.margin:.1%}"],
                    ["latches only", "~75%",
                     f"{latch_coverage.proportion:.1%} ±{latch_coverage.margin:.1%}"],
                ],
                title="Latch-only vs all-state symptom coverage",
            ),
        ]
    )
    emit("fig4b_latch_only", text)

    assert latch_coverage.trials > 0
    # The paper's key claim: latch faults are better covered than average.
    assert latch_coverage.proportion >= all_coverage.proportion
