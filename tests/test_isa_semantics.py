"""Execution semantics vs independent Python references."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import opcodes as op
from repro.isa import semantics
from repro.isa.encoding import decode_word, encode_branch, encode_memory, encode_operate
from repro.util.bitops import MASK32, MASK64, sign_extend, to_signed64

u64 = st.integers(0, MASK64)


def operate(mnemonic, a, b):
    spec = op.SPEC_BY_MNEMONIC[mnemonic]
    word = encode_operate(spec.opcode, spec.func, 1, 2, 3, is_literal=False)
    return semantics.execute_operate(decode_word(word), a, b)


class TestArithmetic:
    @given(u64, u64)
    def test_addq_wraps(self, a, b):
        assert operate("addq", a, b).value == (a + b) & MASK64

    @given(u64, u64)
    def test_subq_wraps(self, a, b):
        assert operate("subq", a, b).value == (a - b) & MASK64

    @given(u64, u64)
    def test_addl_truncates_and_extends(self, a, b):
        assert operate("addl", a, b).value == sign_extend((a + b) & MASK32, 32)

    @given(u64, u64)
    def test_subl(self, a, b):
        assert operate("subl", a, b).value == sign_extend((a - b) & MASK32, 32)

    @given(u64, u64)
    def test_mulq(self, a, b):
        assert operate("mulq", a, b).value == (a * b) & MASK64

    @given(u64, u64)
    def test_umulh(self, a, b):
        assert operate("umulh", a, b).value == ((a * b) >> 64) & MASK64

    @given(u64, u64)
    def test_mull(self, a, b):
        assert operate("mull", a, b).value == sign_extend((a * b) & MASK32, 32)


class TestTrappingArithmetic:
    def test_addqv_overflow_flagged(self):
        result = operate("addqv", (1 << 63) - 1, 1)
        assert result.overflow

    def test_addqv_no_overflow(self):
        assert not operate("addqv", 1, 2).overflow

    def test_subqv_overflow(self):
        result = operate("subqv", 1 << 63, 1)  # MIN - 1
        assert result.overflow

    def test_mulqv_overflow(self):
        assert operate("mulqv", 1 << 62, 4).overflow

    @given(u64, u64)
    def test_overflow_iff_signed_result_out_of_range(self, a, b):
        total = to_signed64(a) + to_signed64(b)
        expected = not -(1 << 63) <= total <= (1 << 63) - 1
        assert operate("addqv", a, b).overflow == expected


class TestComparisons:
    @given(u64, u64)
    def test_cmpeq(self, a, b):
        assert operate("cmpeq", a, b).value == int(a == b)

    @given(u64, u64)
    def test_cmplt_signed(self, a, b):
        assert operate("cmplt", a, b).value == int(to_signed64(a) < to_signed64(b))

    @given(u64, u64)
    def test_cmple_signed(self, a, b):
        assert operate("cmple", a, b).value == int(to_signed64(a) <= to_signed64(b))

    @given(u64, u64)
    def test_cmpult_unsigned(self, a, b):
        assert operate("cmpult", a, b).value == int(a < b)

    @given(u64, u64)
    def test_cmpule_unsigned(self, a, b):
        assert operate("cmpule", a, b).value == int(a <= b)


class TestLogic:
    @given(u64, u64)
    def test_and_or_xor(self, a, b):
        assert operate("and", a, b).value == a & b
        assert operate("bis", a, b).value == a | b
        assert operate("xor", a, b).value == a ^ b

    @given(u64, u64)
    def test_bic_ornot_eqv(self, a, b):
        assert operate("bic", a, b).value == a & ~b & MASK64
        assert operate("ornot", a, b).value == (a | ~b) & MASK64
        assert operate("eqv", a, b).value == (a ^ b) ^ MASK64


class TestShifts:
    @given(u64, st.integers(0, 63))
    def test_sll(self, a, amount):
        assert operate("sll", a, amount).value == (a << amount) & MASK64

    @given(u64, st.integers(0, 63))
    def test_srl(self, a, amount):
        assert operate("srl", a, amount).value == a >> amount

    @given(u64, st.integers(0, 63))
    def test_sra(self, a, amount):
        assert operate("sra", a, amount).value == (to_signed64(a) >> amount) & MASK64

    @given(u64, u64)
    def test_shift_amount_masked_to_6_bits(self, a, amount):
        assert operate("sll", a, amount).value == (a << (amount & 63)) & MASK64


class TestCmov:
    def _cmov(self, mnemonic, a, b, old):
        spec = op.SPEC_BY_MNEMONIC[mnemonic]
        word = encode_operate(spec.opcode, spec.func, 1, 2, 3, is_literal=False)
        return semantics.execute_cmov(decode_word(word), a, b, old)

    def test_cmoveq_takes_on_zero(self):
        assert self._cmov("cmoveq", 0, 42, 7).value == 42
        assert self._cmov("cmoveq", 1, 42, 7).value == 7

    def test_cmovne(self):
        assert self._cmov("cmovne", 1, 42, 7).value == 42
        assert self._cmov("cmovne", 0, 42, 7).value == 7

    def test_cmovlt_cmovge(self):
        negative = MASK64  # -1
        assert self._cmov("cmovlt", negative, 42, 7).value == 42
        assert self._cmov("cmovge", negative, 42, 7).value == 7
        assert self._cmov("cmovge", 3, 42, 7).value == 42

    def test_execute_operate_rejects_cmov(self):
        spec = op.SPEC_BY_MNEMONIC["cmoveq"]
        word = encode_operate(spec.opcode, spec.func, 1, 2, 3, is_literal=False)
        with pytest.raises(ValueError):
            semantics.execute_operate(decode_word(word), 0, 0)


class TestBranches:
    def _taken(self, mnemonic, a):
        spec = op.SPEC_BY_MNEMONIC[mnemonic]
        inst = decode_word(encode_branch(spec.opcode, 1, 4))
        return semantics.branch_taken(inst, a)

    @given(u64)
    def test_beq_bne_complementary(self, a):
        assert self._taken("beq", a) != self._taken("bne", a)

    @given(u64)
    def test_blt_bge_complementary(self, a):
        assert self._taken("blt", a) != self._taken("bge", a)

    @given(u64)
    def test_ble_bgt_complementary(self, a):
        assert self._taken("ble", a) != self._taken("bgt", a)

    @given(u64)
    def test_blbs_blbc_complementary(self, a):
        assert self._taken("blbs", a) != self._taken("blbc", a)

    def test_signed_direction(self):
        assert self._taken("blt", MASK64)  # -1 < 0
        assert not self._taken("blt", 1)
        assert self._taken("bgt", 1)

    def test_branch_target_arithmetic(self):
        spec = op.SPEC_BY_MNEMONIC["br"]
        inst = decode_word(encode_branch(spec.opcode, 31, -2))
        assert inst.branch_target(0x1000) == 0x1000 + 4 - 8


class TestMemorySemantics:
    def test_effective_address_negative_disp(self):
        inst = decode_word(encode_memory(op.OP_LDQ, 1, 2, -8))
        assert semantics.effective_address(inst, 0x100) == 0xF8

    def test_lda_and_ldah(self):
        lda = decode_word(encode_memory(op.OP_LDA, 1, 2, 5))
        ldah = decode_word(encode_memory(op.OP_LDAH, 1, 2, 5))
        assert semantics.lda_value(lda, 100) == 105
        assert semantics.lda_value(ldah, 100) == 100 + 5 * 65536

    def test_jump_target_clears_low_bits(self):
        assert semantics.jump_target(0x1003) == 0x1000

    def test_extend_loaded(self):
        ldbu = decode_word(encode_memory(op.OP_LDBU, 1, 2, 0))
        ldl = decode_word(encode_memory(op.OP_LDL, 1, 2, 0))
        ldq = decode_word(encode_memory(op.OP_LDQ, 1, 2, 0))
        assert semantics.extend_loaded(ldbu, 0x1FF) == 0xFF
        assert semantics.extend_loaded(ldl, 0x8000_0000) == sign_extend(0x8000_0000, 32)
        assert semantics.extend_loaded(ldq, MASK64) == MASK64

    def test_store_value_truncates(self):
        stb = decode_word(encode_memory(op.OP_STB, 1, 2, 0))
        stl = decode_word(encode_memory(op.OP_STL, 1, 2, 0))
        assert semantics.store_value(stb, 0x1234) == 0x34
        assert semantics.store_value(stl, MASK64) == MASK32
