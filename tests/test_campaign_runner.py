"""The resilient campaign runner: containment, resume, parallelism."""

import json

import pytest

from repro.campaign import (
    CampaignWorkloadWarning,
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    TrialGuard,
    TrialOutcome,
    format_status,
    run_campaign,
    summarize_journal,
    timeout_supported,
)
from repro.faults import (
    ArchCampaignConfig,
    ArchTrialResult,
    UarchCampaignConfig,
    UarchTrialResult,
)
from repro.faults import arch_campaign
from repro.util.journal import JournalError

ARCH_CONFIG = ArchCampaignConfig(
    trials_per_workload=8, injection_points=4, workloads=("gcc",)
)


class TestTrialGuard:
    def test_ok_outcome_carries_record(self):
        guard = TrialGuard()
        outcome = guard.run("w:1:0", "w", 1, 0, lambda: "record")
        assert outcome.status == OUTCOME_OK
        assert outcome.record == "record"

    def test_crash_contained_with_traceback_and_descriptor(self):
        guard = TrialGuard()

        def boom():
            raise RuntimeError("simulator exploded")

        outcome = guard.run(
            "w:1:0", "w", 1, 0, boom, descriptor={"trial_seed": 99}
        )
        assert outcome.status == OUTCOME_CRASH
        assert outcome.record is None
        assert outcome.error["type"] == "RuntimeError"
        assert "simulator exploded" in outcome.error["message"]
        assert "RuntimeError" in outcome.error["traceback"]
        assert outcome.error["descriptor"] == {"trial_seed": 99}

    def test_keyboard_interrupt_not_swallowed(self):
        guard = TrialGuard()

        def interrupt():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            guard.run("w:1:0", "w", 1, 0, interrupt)

    @pytest.mark.skipif(not timeout_supported(), reason="no SIGALRM here")
    def test_spin_converted_to_timeout(self):
        guard = TrialGuard(timeout=0.2)

        def spin():
            while True:
                pass

        outcome = guard.run("w:1:0", "w", 1, 0, spin)
        assert outcome.status == OUTCOME_TIMEOUT
        assert outcome.error["timeout_seconds"] == 0.2

    def test_worker_thread_degrades_to_containment_with_one_warning(self):
        import threading
        import warnings

        from repro.campaign import guard as guard_module

        guard = TrialGuard(timeout=0.2)
        results = []

        def worker():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = guard.run("w:1:0", "w", 1, 0, lambda: "done")
                second = guard.run("w:1:1", "w", 1, 1, lambda: "done")
            results.append((first, second, caught))

        previously_warned = guard_module._warned_no_timeout
        guard_module._warned_no_timeout = False
        try:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        finally:
            guard_module._warned_no_timeout = previously_warned

        first, second, caught = results[0]
        # No uncaught ValueError from signal.signal: both trials complete.
        assert first.status == OUTCOME_OK
        assert second.status == OUTCOME_OK
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1  # warned once, not per trial
        assert "timeout disabled" in str(runtime_warnings[0].message)


class TestOutcomeSerialization:
    def test_arch_round_trip(self):
        record = ArchTrialResult(
            workload="gcc", inject_step=12, bit=3,
            exception_latency=4, failing=True,
        )
        outcome = TrialOutcome(
            key="gcc:12:0", workload="gcc", point=12, index=0,
            status=OUTCOME_OK, record=record,
        )
        entry = json.loads(json.dumps(outcome.to_entry()))
        assert TrialOutcome.from_entry(entry, "arch") == outcome

    def test_uarch_round_trip(self):
        record = UarchTrialResult(
            workload="mcf", inject_cycle=500, target="prf",
            state_class="ram", bit=9, cfv_latency=17,
        )
        outcome = TrialOutcome(
            key="mcf:500:2", workload="mcf", point=500, index=2,
            status=OUTCOME_OK, record=record,
        )
        entry = json.loads(json.dumps(outcome.to_entry()))
        assert TrialOutcome.from_entry(entry, "uarch") == outcome


class TestContainment:
    def test_trial_crash_becomes_harness_crash_record(self, monkeypatch):
        real = arch_campaign._run_trial
        calls = []

        def flaky(workload, prefix, trace, memop_counts, point, bit, config):
            calls.append(point)
            if len(calls) == 2:
                raise ValueError("rigged kernel crash")
            return real(workload, prefix, trace, memop_counts, point, bit, config)

        monkeypatch.setattr(arch_campaign, "_run_trial", flaky)
        # Per-trial containment is a serial-path property; the lockstep
        # scheduler never calls _run_trial (its failures fall back whole).
        report = run_campaign("arch", ARCH_CONFIG, lockstep=False)
        counts = report.outcome_counts()
        assert counts[OUTCOME_CRASH] == 1
        assert counts[OUTCOME_OK] == len(report.outcomes) - 1
        assert len(report.result.trials) == counts[OUTCOME_OK]
        crash = next(
            o for o in report.outcomes if o.status == OUTCOME_CRASH
        )
        assert "rigged kernel crash" in crash.error["message"]
        assert crash.error["descriptor"]["level"] == "arch"
        assert "trial_seed" in crash.error["descriptor"]

    @pytest.mark.skipif(not timeout_supported(), reason="no SIGALRM here")
    def test_trial_hang_becomes_harness_timeout_record(self, monkeypatch):
        real = arch_campaign._run_trial
        calls = []

        def spinner(workload, prefix, trace, memop_counts, point, bit, config):
            calls.append(point)
            if len(calls) == 1:
                while True:
                    pass
            return real(workload, prefix, trace, memop_counts, point, bit, config)

        monkeypatch.setattr(arch_campaign, "_run_trial", spinner)
        report = run_campaign("arch", ARCH_CONFIG, trial_timeout=0.3,
                              lockstep=False)
        counts = report.outcome_counts()
        assert counts[OUTCOME_TIMEOUT] == 1
        assert counts[OUTCOME_OK] == len(report.outcomes) - 1
        assert report.harness_timeouts == 1

    def test_outcome_table_reports_harness_rows(self, monkeypatch):
        monkeypatch.setattr(
            arch_campaign, "_run_trial",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("all broken")),
        )
        report = run_campaign("arch", ARCH_CONFIG, lockstep=False)
        table = report.outcome_table()
        assert "harness-crash" in table and "harness-timeout" in table
        assert len(report.result.trials) == 0


class TestGoldenRunDegradation:
    def test_failing_golden_run_skips_workload_not_campaign(self, monkeypatch):
        real_build = arch_campaign.build_workload

        def broken_build(name, scale, seed):
            if name == "gzip":
                raise RuntimeError("golden run exploded")
            return real_build(name, scale, seed)

        monkeypatch.setattr(arch_campaign, "build_workload", broken_build)
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3,
            workloads=("gcc", "gzip"),
        )
        with pytest.warns(CampaignWorkloadWarning, match="gzip"):
            report = run_campaign("arch", config)
        assert dict(report.skipped_workloads)["gzip"].startswith("RuntimeError")
        assert all(t.workload == "gcc" for t in report.result.trials)
        assert len(report.result.trials) > 0
        assert "gzip skipped" in report.result.table((25, None))


class TestJournalAndResume:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        config = ArchCampaignConfig(
            trials_per_workload=10, injection_points=5, workloads=("gcc",)
        )
        full_journal = str(tmp_path / "full.jsonl")
        uninterrupted = run_campaign("arch", config, journal_path=full_journal)

        # Simulate a campaign killed mid-run: keep the manifest, the first
        # half of the trial lines, and a torn final line.
        lines = open(full_journal).read().splitlines()
        trial_lines = [l for l in lines if '"kind": "trial"' in l]
        keep = [lines[0]] + trial_lines[: len(trial_lines) // 2]
        interrupted = str(tmp_path / "interrupted.jsonl")
        with open(interrupted, "w") as handle:
            handle.write("\n".join(keep) + "\n")
            handle.write(trial_lines[-1][: 40])  # torn write

        resumed = run_campaign(
            "arch", config, journal_path=interrupted, resume=True
        )
        assert resumed.resumed == len(trial_lines) // 2
        assert resumed.executed == len(trial_lines) - resumed.resumed
        assert resumed.result.trials == uninterrupted.result.trials
        assert resumed.result.table() == uninterrupted.result.table()

        # The resume must have repaired the torn line before appending,
        # leaving the journal readable for status and further resumes.
        status = summarize_journal(interrupted)
        assert status.complete
        again = run_campaign(
            "arch", config, journal_path=interrupted, resume=True
        )
        assert again.executed == 0
        assert again.result.trials == uninterrupted.result.trials

    def test_fully_journaled_run_executes_nothing(self, tmp_path):
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )
        journal = str(tmp_path / "run.jsonl")
        first = run_campaign("arch", config, journal_path=journal)
        second = run_campaign(
            "arch", config, journal_path=journal, resume=True
        )
        assert second.executed == 0
        assert second.resumed == len(first.outcomes)
        assert second.result.trials == first.result.trials

    def test_existing_journal_requires_resume(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_campaign("arch", ARCH_CONFIG, journal_path=journal)
        with pytest.raises(JournalError, match="--resume"):
            run_campaign("arch", ARCH_CONFIG, journal_path=journal)

    def test_resume_rejects_different_config(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_campaign("arch", ARCH_CONFIG, journal_path=journal)
        other = ArchCampaignConfig(
            trials_per_workload=8, injection_points=4,
            workloads=("gcc",), seed=2006,
        )
        with pytest.raises(JournalError, match="different configuration"):
            run_campaign("arch", other, journal_path=journal, resume=True)

    def test_resume_rejects_wrong_level(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_campaign("arch", ARCH_CONFIG, journal_path=journal)
        uarch = UarchCampaignConfig(
            trials_per_workload=8, injection_points=4, workloads=("gcc",)
        )
        with pytest.raises(JournalError, match="arch"):
            run_campaign("uarch", uarch, journal_path=journal, resume=True)


class TestParallelExecution:
    def test_jobs_match_serial_results(self):
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3,
            workloads=("gcc", "gzip"),
        )
        serial = run_campaign("arch", config)
        parallel = run_campaign("arch", config, jobs=2)
        assert parallel.result.trials == serial.result.trials
        assert parallel.result.table() == serial.result.table()

    def test_parallel_journal_resumes_serially(self, tmp_path):
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3,
            workloads=("gcc", "gzip"),
        )
        journal = str(tmp_path / "par.jsonl")
        parallel = run_campaign("arch", config, journal_path=journal, jobs=2)
        resumed = run_campaign(
            "arch", config, journal_path=journal, resume=True
        )
        assert resumed.executed == 0
        assert resumed.result.trials == parallel.result.trials

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign("arch", ARCH_CONFIG, jobs=0)
        with pytest.raises(ValueError, match="trial_timeout"):
            run_campaign("arch", ARCH_CONFIG, trial_timeout=0)
        with pytest.raises(ValueError, match="journal"):
            run_campaign("arch", ARCH_CONFIG, resume=True)
        with pytest.raises(ValueError, match="level"):
            run_campaign("rtl", ARCH_CONFIG)


class TestStatus:
    def test_status_summarizes_journal(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        report = run_campaign("arch", ARCH_CONFIG, journal_path=journal)
        status = summarize_journal(journal)
        assert status.total_trials == len(report.outcomes)
        assert status.complete
        assert status.workloads["gcc"].state == "done"
        text = format_status(status)
        assert "gcc" in text and "complete" in text

    def test_status_flags_incomplete_run(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_campaign("arch", ARCH_CONFIG, journal_path=journal)
        lines = open(journal).read().splitlines()
        torn = str(tmp_path / "torn.jsonl")
        with open(torn, "w") as handle:  # manifest + two trials, no sentinel
            handle.write("\n".join(lines[:3]) + "\n")
        status = summarize_journal(torn)
        assert not status.complete
        assert "resumable" in format_status(status)

    def test_status_rejects_non_journal(self, tmp_path):
        path = tmp_path / "not_a_journal.jsonl"
        path.write_text('{"kind": "trial"}\n')
        with pytest.raises(JournalError, match="manifest"):
            summarize_journal(str(path))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trials_per_workload": 0},
            {"injection_points": 0},
            {"injection_points": 50, "trials_per_workload": 10},
            {"seed": -1},
            {"workload_scale": 0},
            {"max_instructions": 0},
            {"post_injection_slack": -1},
            {"workloads": ()},
            {"workloads": ("gcc", "spice")},
        ],
    )
    def test_arch_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ArchCampaignConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trials_per_workload": 0},
            {"injection_points": 0},
            {"injection_points": 50, "trials_per_workload": 10},
            {"window_cycles": 0},
            {"warmup_cycles": -1},
            {"seed": -1},
            {"workload_scale": 0},
            {"max_golden_cycles": 0},
            {"workloads": ()},
            {"workloads": ("gcc", "spice")},
        ],
    )
    def test_uarch_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            UarchCampaignConfig(**kwargs)


class TestTraceEmission:
    """run_campaign(trace=...) journals trial lifecycle events."""

    def _run(self, trace, jobs=1, journal_path=None):
        return run_campaign(
            "arch", ARCH_CONFIG, trace=trace, jobs=jobs,
            journal_path=journal_path,
        )

    def test_serial_run_emits_one_lifecycle_per_trial(self):
        from repro.telemetry import RingBufferTraceSink, validate_event

        sink = RingBufferTraceSink(capacity=10_000)
        result = self._run(sink)
        begins = sink.events("trial_begin")
        ends = sink.events("trial_end")
        assert len(begins) == len(ends) == result.executed
        for event in sink.events():
            validate_event(event)
        # Every contained trial carries an injection event with its target.
        injections = sink.events("injection")
        ok = result.outcome_counts()[OUTCOME_OK]
        assert len(injections) == ok
        assert {event["target"] for event in injections} == {"arch"}

    def test_parallel_run_emits_same_events(self):
        from repro.telemetry import RingBufferTraceSink

        serial, parallel = (RingBufferTraceSink(10_000) for _ in range(2))
        self._run(serial)
        self._run(parallel, jobs=2)
        def key(event):
            return (event["kind"], event["position"],
                    event.get("status") or "")

        assert sorted(map(key, serial.events())) == sorted(
            map(key, parallel.events())
        )

    def test_journal_gains_telemetry_aggregate(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        result = self._run(None, journal_path=journal)
        entries = [json.loads(line) for line in open(journal)]
        aggregates = [e for e in entries if e.get("kind") == "telemetry"]
        assert len(aggregates) == 1
        ok = result.outcome_counts()[OUTCOME_OK]
        assert aggregates[0]["trials"] == ok

    def test_resume_appends_fresh_aggregate_and_status_uses_newest(
        self, tmp_path
    ):
        journal = str(tmp_path / "run.jsonl")
        self._run(None, journal_path=journal)
        run_campaign("arch", ARCH_CONFIG, journal_path=journal, resume=True)
        entries = [json.loads(line) for line in open(journal)]
        aggregates = [e for e in entries if e.get("kind") == "telemetry"]
        assert len(aggregates) == 2
        status = summarize_journal(journal)
        assert status.telemetry == aggregates[-1]
        assert "repro campaign report" in format_status(status)

    def test_trace_is_optional(self):
        result = self._run(None)
        assert result.executed == ARCH_CONFIG.trials_per_workload


class TestExecutionPolicy:
    def test_none_jobs_resolves_to_core_count(self):
        import os

        from repro.campaign import ExecutionPolicy

        policy = ExecutionPolicy()
        assert policy.jobs == (os.cpu_count() or 1)
        assert policy.trial_timeout is None

    def test_explicit_jobs_preserved(self):
        from repro.campaign import ExecutionPolicy

        assert ExecutionPolicy(jobs=3).jobs == 3

    @pytest.mark.parametrize("jobs", [0, -2, True, 1.5, "4"])
    def test_bad_jobs_rejected(self, jobs):
        from repro.campaign import ExecutionPolicy

        with pytest.raises(ValueError, match="jobs"):
            ExecutionPolicy(jobs=jobs)

    @pytest.mark.parametrize("timeout", [0, -1.0])
    def test_bad_timeout_rejected(self, timeout):
        from repro.campaign import ExecutionPolicy

        with pytest.raises(ValueError, match="trial_timeout"):
            ExecutionPolicy(trial_timeout=timeout)


class TestTornManifestRecovery:
    """A journal holding only a torn fragment (a run killed during its
    first append) must not brick the journal path."""

    def _write_torn_fragment(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        journal.write_text('{"kind": "manifest", "level": "ar')  # no newline
        return str(journal)

    def test_resume_starts_fresh_with_a_warning(self, tmp_path):
        from repro.util.journal import JournalTearWarning

        journal = self._write_torn_fragment(tmp_path)
        with pytest.warns(JournalTearWarning, match="no complete entry"):
            report = run_campaign(
                "arch", ARCH_CONFIG, journal_path=journal, resume=True
            )
        assert report.executed == ARCH_CONFIG.trials_per_workload
        # The rewritten journal is a healthy, fully resumable one.
        resumed = run_campaign(
            "arch", ARCH_CONFIG, journal_path=journal, resume=True
        )
        assert resumed.executed == 0

    def test_fresh_run_overwrites_instead_of_refusing(self, tmp_path):
        from repro.util.journal import JournalTearWarning

        journal = self._write_torn_fragment(tmp_path)
        with pytest.warns(JournalTearWarning, match="no complete entry"):
            report = run_campaign("arch", ARCH_CONFIG, journal_path=journal)
        assert report.executed == ARCH_CONFIG.trials_per_workload
        assert summarize_journal(journal).complete

    def test_journal_with_complete_entries_still_requires_resume(
        self, tmp_path
    ):
        journal = str(tmp_path / "run.jsonl")
        run_campaign("arch", ARCH_CONFIG, journal_path=journal)
        with pytest.raises(JournalError, match="--resume"):
            run_campaign("arch", ARCH_CONFIG, journal_path=journal)


class TestWorkerRetryTelemetry:
    """Worker retry-once semantics must not duplicate results: a workload
    whose worker dies is re-run in the parent, and the journal, trace,
    and tables see each trial exactly once."""

    def _fake_pool(self, doomed):
        from concurrent.futures import Future

        deaths = {name: True for name in doomed}

        class FakePool:
            def __init__(self, max_workers=None):
                self.max_workers = max_workers

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, *args):
                future = Future()
                name = args[2]  # (level, config, workload, completed, timeout)
                if deaths.pop(name, False):
                    future.set_exception(
                        RuntimeError("worker process died mid-workload")
                    )
                else:
                    future.set_result(fn(*args))
                return future

        return FakePool

    def test_retried_workload_emits_no_duplicate_events(
        self, tmp_path, monkeypatch
    ):
        from repro.campaign import runner as runner_module
        from repro.telemetry import RingBufferTraceSink

        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3,
            workloads=("gcc", "gzip"),
        )
        serial_sink = RingBufferTraceSink(10_000)
        serial = run_campaign("arch", config, trace=serial_sink)

        monkeypatch.setattr(
            runner_module, "ProcessPoolExecutor", self._fake_pool({"gcc"})
        )
        journal = str(tmp_path / "retry.jsonl")
        retry_sink = RingBufferTraceSink(10_000)
        retried = run_campaign(
            "arch", config, journal_path=journal, jobs=2, trace=retry_sink
        )

        # No workload was skipped: the in-parent retry succeeded.
        assert retried.skipped_workloads == ()
        assert retried.result.table() == serial.result.table()

        # The journal holds each trial key exactly once.
        entries = [json.loads(line) for line in open(journal)]
        keys = [e["key"] for e in entries if e.get("kind") == "trial"]
        assert len(keys) == len(set(keys)) == len(serial.outcomes)

        # The merged trace carries one lifecycle per trial — no duplicates
        # from the doomed first attempt.
        begins = retry_sink.events("trial_begin")
        ends = retry_sink.events("trial_end")
        assert len(begins) == len(ends) == len(serial.outcomes)

        def key(event):
            return (event["kind"], event["position"],
                    event.get("status") or "")

        assert sorted(map(key, retry_sink.events())) == sorted(
            map(key, serial_sink.events())
        )

    def test_twice_dead_worker_skips_workload_without_duplicates(
        self, tmp_path, monkeypatch
    ):
        from repro.campaign import runner as runner_module
        from repro.telemetry import RingBufferTraceSink

        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3,
            workloads=("gcc", "gzip"),
        )
        monkeypatch.setattr(
            runner_module, "ProcessPoolExecutor", self._fake_pool({"gcc"})
        )
        # Make the in-parent retry die too — but only for gcc; the fake
        # pool routes gzip through this same function and gzip must run.
        real_task = runner_module._workload_task

        def dying_task(level, cfg, workload, completed, timeout,
                       cache_dir=None, lockstep=True):
            if workload == "gcc":
                raise RuntimeError("retry also died")
            return real_task(level, cfg, workload, completed, timeout,
                             cache_dir, lockstep)

        monkeypatch.setattr(runner_module, "_workload_task", dying_task)
        journal = str(tmp_path / "skip.jsonl")
        sink = RingBufferTraceSink(10_000)
        report = run_campaign(
            "arch", config, journal_path=journal, jobs=2, trace=sink
        )
        assert [name for name, _ in report.skipped_workloads] == ["gcc"]
        entries = [json.loads(line) for line in open(journal)]
        keys = [e["key"] for e in entries if e.get("kind") == "trial"]
        assert len(keys) == len(set(keys))
        assert all(k.startswith("gzip:") for k in keys)
        sentinels = {
            e["workload"]: e["status"]
            for e in entries if e.get("kind") == "workload"
        }
        assert sentinels == {"gcc": "skipped", "gzip": "done"}


MEMHIER_CONFIG = UarchCampaignConfig(
    trials_per_workload=6, injection_points=3, window_cycles=800,
    workloads=("gcc",), seed=7, memhier_targets=True,
    detectors=("miss_spike", "stall_outlier", "spurious_memop"),
)


class TestMemhierCampaign:
    """The memory-hierarchy ablation: determinism and journal hygiene."""

    def test_detectors_list_coerced_and_validated(self):
        config = UarchCampaignConfig(detectors=["miss_spike"])
        assert config.detectors == ("miss_spike",)
        with pytest.raises(ValueError, match="unknown detectors"):
            UarchCampaignConfig(detectors=("bogus",))

    def test_memhier_flips_reach_cache_and_mshr_state(self):
        report = run_campaign("uarch", MEMHIER_CONFIG)
        targets = {t.target for t in report.result.trials}
        # With tag/valid/LRU + MSHR registered, the per-trial RNG draws
        # from a larger population; on 6 trials at this seed some land in
        # the new structures (pinned by the deterministic seed).
        assert targets & {"icache", "dcache", "mshr"}
        assert report.result.total_bits > 0

    def test_parallel_and_serial_journals_are_identical(self, tmp_path):
        serial = str(tmp_path / "serial.jsonl")
        parallel = str(tmp_path / "parallel.jsonl")
        run_campaign("uarch", MEMHIER_CONFIG, journal_path=serial)
        run_campaign("uarch", MEMHIER_CONFIG, journal_path=parallel, jobs=2)
        assert open(serial).read() == open(parallel).read()

    def test_interrupted_memhier_run_resumes_bit_identical(self, tmp_path):
        full = str(tmp_path / "full.jsonl")
        run_campaign("uarch", MEMHIER_CONFIG, journal_path=full)
        lines = open(full).read().splitlines()
        trial_lines = [l for l in lines if '"kind": "trial"' in l]
        interrupted = str(tmp_path / "interrupted.jsonl")
        with open(interrupted, "w") as handle:
            handle.write("\n".join([lines[0]] + trial_lines[:3]) + "\n")
        resumed = run_campaign(
            "uarch", MEMHIER_CONFIG, journal_path=interrupted, resume=True
        )
        assert resumed.resumed == 3
        assert open(full).read() == open(interrupted).read()

    def test_default_config_journal_has_no_memhier_artifacts(self, tmp_path):
        """Defaults must write entries byte-shaped like pre-feature runs:
        no detector keys in records, no memhier keys in the manifest."""
        path = str(tmp_path / "default.jsonl")
        config = UarchCampaignConfig(
            trials_per_workload=4, injection_points=2, window_cycles=800,
            workloads=("gcc",), seed=7,
        )
        run_campaign("uarch", config, journal_path=path)
        entries = [json.loads(line) for line in open(path)]
        assert "memhier_targets" not in entries[0]["config"]
        assert "detectors" not in entries[0]["config"]
        for entry in entries:
            if entry.get("kind") == "trial":
                assert "miss_spike_latency" not in entry["record"]
        telemetry = [e for e in entries if e.get("kind") == "telemetry"]
        assert "miss_spike" not in telemetry[-1]["detectors"]

    def test_memhier_journal_carries_detector_telemetry(self, tmp_path):
        path = str(tmp_path / "memhier.jsonl")
        run_campaign("uarch", MEMHIER_CONFIG, journal_path=path)
        entries = [json.loads(line) for line in open(path)]
        assert entries[0]["config"]["memhier_targets"] is True
        telemetry = [e for e in entries if e.get("kind") == "telemetry"][-1]
        assert {"miss_spike", "stall_outlier", "spurious_memop"} <= set(
            telemetry["detectors"]
        )
