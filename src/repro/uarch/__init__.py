"""Cycle-level out-of-order pipeline model (the paper's "Verilog model").

A superscalar, dynamically-scheduled pipeline similar in structure to the
paper's processor (itself Alpha 21264 / AMD Athlon class): speculative
fetch with a combining branch predictor, BTB, RAS and a JRS confidence
estimator; a 32-entry fetch queue; 4-wide decode and rename through
speculative register alias tables and free lists; a 32-entry scheduler
issuing up to 6 instructions per cycle; load/store queues with memory
dependence prediction and store-to-load forwarding; a 64-entry reorder
buffer; and a committed-store buffer that doubles as the ReStore
checkpointing gate. Caches and TLBs are modelled for timing and for the
cache-miss symptom ablation.

Every latch and RAM cell of the machine is registered in a
:class:`~repro.uarch.latches.StateRegistry`, giving the fault-injection
framework a uniform bit-addressable view of ~tens of thousands of bits of
"interesting" state — the paper's eligible injection targets (caches and
predictor tables are excluded, as in the paper).
"""

from repro.uarch.config import PipelineConfig
from repro.uarch.latches import StateField, StateRegistry
from repro.uarch.pipeline import Pipeline, RetiredInst, load_pipeline

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "RetiredInst",
    "StateField",
    "StateRegistry",
    "load_pipeline",
]
