"""Performance models (Figure 7)."""

import pytest

from repro.perfmodel import (
    AnalyticInputs,
    AnalyticPerfModel,
    measure_restore_performance,
)


@pytest.fixture(scope="module")
def measured_points():
    return measure_restore_performance(
        intervals=(100, 500), workloads=("gcc", "mcf", "bzip2")
    )


class TestSimulationModel:
    def test_speedup_at_most_one(self, measured_points):
        for point in measured_points:
            assert point.speedup <= 1.001

    def test_minor_hit_at_short_intervals(self, measured_points):
        """Paper: 'the performance hit is minor for shorter checkpointing
        intervals' (~6% at 100)."""
        at_100 = [p for p in measured_points if p.interval == 100]
        for point in at_100:
            assert point.speedup > 0.80

    def test_delayed_gains_at_long_intervals(self, measured_points):
        """Paper: delayed 'begins to gain an advantage at 500 instruction
        intervals'."""
        imm = next(
            p for p in measured_points
            if p.interval == 500 and p.policy == "imm"
        )
        delayed = next(
            p for p in measured_points
            if p.interval == 500 and p.policy == "delayed"
        )
        assert delayed.speedup >= imm.speedup

    def test_rollbacks_counted(self, measured_points):
        assert any(point.rollbacks > 0 for point in measured_points)


class TestAnalyticModel:
    def test_no_symptoms_no_cost(self):
        model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=0.0))
        assert model.speedup(100, "imm") == 1.0

    def test_overhead_grows_with_interval_imm(self):
        model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=5e-4))
        speedups = [model.speedup(i, "imm") for i in (50, 100, 500, 1000)]
        assert speedups == sorted(speedups, reverse=True)

    def test_delayed_beats_imm_at_long_intervals(self):
        model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=5e-4))
        assert model.speedup(1000, "delayed") > model.speedup(1000, "imm")

    def test_imm_competitive_at_short_intervals(self):
        """Paper: 'the delayed configuration slightly underperforms the imm
        configuration at smaller intervals'."""
        model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=5e-4))
        assert model.speedup(50, "imm") >= model.speedup(50, "delayed") - 0.02

    def test_overhead_percent(self):
        model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=5e-4))
        assert model.overhead_percent(100, "imm") == pytest.approx(
            (1 - model.speedup(100, "imm")) * 100
        )

    def test_unknown_policy(self):
        model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=1e-4))
        with pytest.raises(ValueError):
            model.speedup(100, "bogus")

    def test_paper_ballpark_at_100(self):
        """With a plausible symptom rate the 100-instruction interval lands
        in the paper's single-digit-percent overhead regime."""
        model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=4e-4))
        assert 0.90 < model.speedup(100, "imm") < 1.0
