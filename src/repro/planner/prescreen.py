"""Masking-equivalence prescreen: provably-dead injections, no simulation.

The arch campaign flips one bit of the register an injection-point
instruction just wrote. If, scanning the golden trace forward from the
injection, the *first* instruction that touches that register overwrites
it without reading it, the flip is dead for every bit: no instruction in
between consumed the corrupt value, so every fetch, operand, branch
decision, memory address, store datum, and exception check is identical
to golden; at the overwriting instruction the register heals to exactly
golden's value (its own inputs are clean), and the trial mirrors golden
to the halt. The outcome is the masked record — all symptom latencies
``None``, ``failing=False`` — that full simulation would produce, which
the differential tests verify kernel by kernel.

Two guards keep the proof honest:

- ``trace.halted`` must hold. A golden run stopped by the instruction
  limit leaves the trial running past the traced window, where the
  campaign's runaway/final-state checks apply — not provable statically.
- The golden run must not store into any executed code page (the same
  modifies-code guard the lockstep scheduler uses before trusting
  per-PC metadata): otherwise the traced words could differ from the
  ones ``trace.final_memory`` holds.

The memory-byte analogue (store overwritten before the next load) is
deliberately out of scope: the arch fault model only flips registers,
and a store of a corrupt register already trips the store-data
comparator before any liveness argument could apply.

Classification is per *point*, not per trial — bit-independent — so one
cheap trace scan retires every trial of a dead point at once.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable

from repro.arch.memory import PAGE_SHIFT
from repro.faults.lockstep import register_touch_steps, written_register


def _golden_modifies_code(trace) -> bool:
    executed = {pc >> PAGE_SHIFT for pc in trace.pcs}
    return any(
        kind == "S" and (addr >> PAGE_SHIFT) in executed
        for kind, addr, _value in trace.memops
    )


def _first_after(steps: list[int] | None, step: int) -> int | None:
    if not steps:
        return None
    i = bisect_right(steps, step)
    return steps[i] if i < len(steps) else None


def prescreen_dead_points(trace, points: Iterable[int]) -> set[int]:
    """The subset of injection ``points`` whose register flip is provably
    masked — destination overwritten before the next read, golden halted.

    Conservative by construction: any point it cannot prove dead (no
    later touch, a read-first touch, an instruction that reads its own
    destination, a non-halting golden run, self-modifying code) stays
    live and is simulated normally. Returns the empty set rather than
    guessing whenever the guards fail.
    """
    candidates = sorted(set(points))
    if not candidates or not trace.halted:
        return set()
    if _golden_modifies_code(trace):
        return set()
    memory = trace.final_memory
    reads, writes = register_touch_steps(trace, memory)
    dead: set[int] = set()
    for point in candidates:
        dest = written_register(trace, memory, point)
        if dest < 0:  # pragma: no cover - writer_steps guarantees a dest
            continue
        next_write = _first_after(writes.get(dest), point)
        if next_write is None:
            continue  # never healed: the corrupt register survives to the end
        next_read = _first_after(reads.get(dest), point)
        if next_read is not None and next_read <= next_write:
            continue  # the corrupt value is consumed (or merged) first
        dead.add(point)
    return dead
