"""Pipeline configuration.

Defaults follow the paper's processor model: a 12-stage pipeline with up to
132 instructions in flight, a 32-entry scheduler, a 64-entry reorder buffer,
a 32-entry fetch queue, 4-wide fetch/decode/rename/retire and 6-wide issue.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineConfig:
    """Structure sizes, widths, and latencies."""

    # Widths.
    fetch_width: int = 4
    decode_width: int = 4
    rename_width: int = 4
    issue_width: int = 6
    retire_width: int = 4

    # Structure sizes.
    fetch_queue_entries: int = 32
    scheduler_entries: int = 32
    rob_entries: int = 64
    ldq_entries: int = 16
    stq_entries: int = 16
    store_buffer_entries: int = 64
    physical_registers: int = 128

    # Front-end depth: cycles between fetch and earliest possible rename,
    # modelling the 12-stage pipe's front half (fetch, align, decode).
    frontend_delay: int = 4
    # Cycles between issue and execute (register read stages).
    regread_delay: int = 2

    # Functional units: 3 ALUs, 1 branch, 2 AGEN (address generation).
    alu_units: int = 3
    branch_units: int = 1
    agen_units: int = 2

    # Latencies (cycles from execute start to writeback).
    alu_latency: int = 1
    branch_latency: int = 1
    multiply_latency: int = 4
    cache_hit_latency: int = 3
    cache_miss_latency: int = 20
    tlb_miss_penalty: int = 12
    icache_miss_latency: int = 12

    # Branch prediction.
    bimodal_entries: int = 4096
    gshare_entries: int = 4096
    chooser_entries: int = 4096
    history_bits: int = 12
    btb_entries: int = 512
    ras_entries: int = 16

    # JRS confidence estimator (Jacobsen, Rotenberg, Smith; MICRO-29).
    jrs_entries: int = 1024
    jrs_counter_bits: int = 4
    jrs_threshold: int = 15  # counter value at or above which = high confidence

    # Caches (modelled for timing and miss symptoms; injection targets only
    # when the pipeline is built with memhier_targets).
    l1i_sets: int = 128
    l1i_ways: int = 2
    l1i_line_bytes: int = 32
    l1d_sets: int = 128
    l1d_ways: int = 2
    l1d_line_bytes: int = 32
    itlb_entries: int = 64
    dtlb_entries: int = 64
    # D-cache miss status holding registers. Tracked (and registerable)
    # only under memhier_targets; a full file charges one extra miss
    # penalty, the structural stall a corrupted occupancy makes visible.
    mshr_entries: int = 8

    # Minimum no-retirement streak (cycles) worth reporting as a
    # stall_streak symptom when memory-hierarchy symptom recording is on.
    stall_streak_floor: int = 32

    # Watchdog: cycles without a retirement before declaring deadlock.
    watchdog_cycles: int = 400

    # Memory dependence predictor.
    memdep_entries: int = 256

    @property
    def max_in_flight(self) -> int:
        """Paper: "up to 132 instructions in-flight"."""
        return (
            self.rob_entries
            + self.fetch_queue_entries
            + self.decode_width * self.frontend_delay
        )
