"""Program container produced by the assembler and consumed by loaders.

A :class:`Program` holds the text segment (encoded instruction words), the
data segment (raw bytes), the symbol table, and the load conventions both
simulators follow:

- text loads at ``TEXT_BASE``, data at ``DATA_BASE``;
- the loader maps a stack region below ``STACK_TOP`` and initialises
  ``SP = STACK_TOP`` and ``GP = DATA_BASE``;
- execution begins at the ``start`` symbol if defined, else at the first
  text address, and ends at a ``halt`` instruction.

Addresses live well below 2**32 while the ISA is 64-bit: the virtual address
space is vastly larger than any program's footprint, which is exactly the
property the paper identifies as the reason random pointer corruptions so
often raise memory-access exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0020_0000
STACK_TOP = 0x0400_0000
STACK_BYTES = 64 * 1024


@dataclass(frozen=True)
class Segment:
    """A contiguous initialised region of the address space."""

    name: str
    base: int
    data: bytes

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclass
class Program:
    """An assembled program ready to load."""

    name: str
    text_words: list[int]
    data_bytes: bytes
    symbols: dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE

    @property
    def entry_point(self) -> int:
        return self.symbols.get("start", self.text_base)

    @property
    def text_segment(self) -> Segment:
        raw = b"".join(
            word.to_bytes(4, "little") for word in self.text_words
        )
        return Segment("text", self.text_base, raw)

    @property
    def data_segment(self) -> Segment:
        return Segment("data", self.data_base, self.data_bytes)

    @property
    def segments(self) -> list[Segment]:
        result = [self.text_segment]
        if self.data_bytes:
            result.append(self.data_segment)
        return result

    @property
    def text_end(self) -> int:
        return self.text_base + 4 * len(self.text_words)

    def word_at(self, address: int) -> int:
        """The instruction word at a text address."""
        if address % 4 != 0:
            raise ValueError(f"misaligned text address 0x{address:x}")
        index = (address - self.text_base) // 4
        if not 0 <= index < len(self.text_words):
            raise ValueError(f"address 0x{address:x} outside text segment")
        return self.text_words[index]

    def symbol(self, name: str) -> int:
        if name not in self.symbols:
            raise KeyError(f"undefined symbol {name!r}")
        return self.symbols[name]
