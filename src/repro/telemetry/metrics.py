"""Derived metrics: the paper's Section 3.3 numbers from trial records.

A candidate symptom is judged by three metrics: (1) how often
failure-causing errors produce it, (2) its error-to-symptom propagation
latency, and (3) its frequency during error-free execution. A campaign's
trial records carry exactly the raw material — per-symptom latencies and
the failing/masked verdict — so this module aggregates them into
per-detector :class:`DetectorMetrics` (coverage, latency histogram,
benign firing rate) plus the rollback-distance distributions implied by
the two-live-checkpoints recovery scheme.

Rollback distance follows Section 5.2.3: a symptom at architectural
position ``s`` restores the *older* of the two live checkpoints, so the
machine rewinds ``interval + (s mod interval)`` instructions — between 1
and 2 intervals, averaging 1.5. Trial records store the injection
position and the symptom latency, which pins down ``s`` exactly.

Everything serializes to/from flat dicts so the campaign runner can
journal an aggregate alongside the trial lines and ``repro campaign
report`` can re-render without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SCHEMA_VERSION = 1

#: Latency bucket upper bounds (retired instructions), chosen to bracket
#: the paper's Figure 2/4 x-axis; the implicit final bucket is overflow.
LATENCY_EDGES: tuple[int, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10_000)

#: Symptom kinds per campaign level, in report order.
ARCH_SYMPTOMS = ("exception", "cfv", "mem-addr", "mem-data")
UARCH_SYMPTOMS = ("deadlock", "exception", "cfv", "hc_mispredict")

#: Checkpoint intervals for the rollback-distance breakdown.
DEFAULT_INTERVALS: tuple[int, ...] = (50, 100, 500)


class Histogram:
    """A fixed-edge histogram with an overflow bucket and exact mean.

    ``edges`` are ascending inclusive upper bounds; a value ``v`` lands in
    the first bucket with ``v <= edge``, or the overflow bucket. The value
    sum is tracked so ``mean`` is exact, not bucket-approximated.
    """

    def __init__(self, edges: tuple[int, ...] = LATENCY_EDGES):
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(f"edges must be ascending and unique: {edges!r}")
        self.edges = tuple(edges)
        self.counts = [0] * (len(edges) + 1)
        self._sum = 0

    def add(self, value: int) -> None:
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self._sum += value

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        total = self.total
        return self._sum / total if total else 0.0

    def quantile(self, q: float) -> int | None:
        """Upper bound of the bucket containing the q-quantile (None when
        empty; the overflow bucket reports the last edge)."""
        total = self.total
        if not total:
            return None
        rank = q * total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return self.edges[min(index, len(self.edges) - 1)]
        return self.edges[-1]

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different edges")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self._sum += other._sum

    def bucket_labels(self) -> list[str]:
        labels = []
        lower = 0
        for edge in self.edges:
            labels.append(f"{lower + 1}-{edge}" if edge > lower + 1 else f"{edge}")
            lower = edge
        labels.append(f">{self.edges[-1]}")
        return labels

    def as_dict(self) -> dict:
        return {"edges": list(self.edges), "counts": list(self.counts),
                "sum": self._sum}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls(tuple(data["edges"]))
        counts = list(data["counts"])
        if len(counts) != len(histogram.counts):
            raise ValueError("histogram counts do not match edges")
        histogram.counts = counts
        histogram._sum = int(data.get("sum", 0))
        return histogram


@dataclass
class DetectorMetrics:
    """Section 3.3's three numbers for one symptom detector."""

    symptom: str
    fired_on_failing: int = 0
    fired_on_benign: int = 0
    failing_trials: int = 0
    benign_trials: int = 0
    latency: Histogram = field(default_factory=Histogram)

    @property
    def coverage(self) -> float:
        """Metric 1: fraction of failure-causing errors that produce it."""
        if not self.failing_trials:
            return 0.0
        return self.fired_on_failing / self.failing_trials

    @property
    def benign_rate(self) -> float:
        """Metric 3: firing frequency when no failure occurred."""
        if not self.benign_trials:
            return 0.0
        return self.fired_on_benign / self.benign_trials

    def merge(self, other: "DetectorMetrics") -> None:
        """Fold another shard's tallies for the same symptom into this one."""
        if other.symptom != self.symptom:
            raise ValueError(
                f"cannot merge detector {other.symptom!r} into {self.symptom!r}"
            )
        self.fired_on_failing += other.fired_on_failing
        self.fired_on_benign += other.fired_on_benign
        self.failing_trials += other.failing_trials
        self.benign_trials += other.benign_trials
        self.latency.merge(other.latency)

    def as_dict(self) -> dict:
        return {
            "symptom": self.symptom,
            "fired_on_failing": self.fired_on_failing,
            "fired_on_benign": self.fired_on_benign,
            "failing_trials": self.failing_trials,
            "benign_trials": self.benign_trials,
            "latency": self.latency.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DetectorMetrics":
        return cls(
            symptom=data["symptom"],
            fired_on_failing=int(data["fired_on_failing"]),
            fired_on_benign=int(data["fired_on_benign"]),
            failing_trials=int(data["failing_trials"]),
            benign_trials=int(data["benign_trials"]),
            latency=Histogram.from_dict(data["latency"]),
        )


@dataclass
class CampaignMetrics:
    """The aggregate telemetry view of one campaign's trials."""

    level: str
    trials: int = 0
    failing: int = 0
    detectors: dict[str, DetectorMetrics] = field(default_factory=dict)
    rollback_distance: dict[int, Histogram] = field(default_factory=dict)
    # Adaptive-planner account (budget, executed, trials saved, prescreen
    # hits — see repro.planner.aggregate_planner_summaries). ``None`` for
    # uniform campaigns, and omitted from the journal entry so their
    # telemetry lines stay byte-identical to pre-planner journals.
    planner: dict | None = None

    def to_entry(self) -> dict:
        """The journal (JSONL) representation."""
        entry = {
            "kind": "telemetry",
            "schema": SCHEMA_VERSION,
            "level": self.level,
            "trials": self.trials,
            "failing": self.failing,
            "detectors": {
                name: metrics.as_dict() for name, metrics in self.detectors.items()
            },
            "rollback_distance": {
                str(interval): histogram.as_dict()
                for interval, histogram in self.rollback_distance.items()
            },
        }
        if self.planner is not None:
            entry["planner"] = self.planner
        return entry

    @classmethod
    def from_entry(cls, entry: dict) -> "CampaignMetrics":
        return cls(
            level=entry["level"],
            trials=int(entry["trials"]),
            failing=int(entry["failing"]),
            detectors={
                name: DetectorMetrics.from_dict(data)
                for name, data in entry.get("detectors", {}).items()
            },
            rollback_distance={
                int(interval): Histogram.from_dict(data)
                for interval, data in entry.get("rollback_distance", {}).items()
            },
            planner=entry.get("planner"),
        )

    def merge(self, other: "CampaignMetrics") -> None:
        """Fold another shard's aggregate into this one.

        Every constituent is an integer tally (trial counts, detector
        firings, histogram buckets), so merging per-shard aggregates is
        exact: summing the aggregates of any partition of a campaign's
        trials yields the same object as aggregating all trials serially.
        The campaign service relies on this to combine per-unit metrics
        into per-job metrics without re-reading trial records. The
        ``planner`` section is deliberately not merged: it is a whole-
        campaign account computed by replaying the planner, never a
        per-shard tally.
        """
        if other.level != self.level:
            raise ValueError(
                f"cannot merge {other.level!r} metrics into {self.level!r}"
            )
        self.trials += other.trials
        self.failing += other.failing
        for name, detector in other.detectors.items():
            mine = self.detectors.get(name)
            if mine is None:
                self.detectors[name] = DetectorMetrics.from_dict(
                    detector.as_dict()
                )
            else:
                mine.merge(detector)
        for interval, histogram in other.rollback_distance.items():
            mine_hist = self.rollback_distance.get(interval)
            if mine_hist is None:
                self.rollback_distance[interval] = Histogram.from_dict(
                    histogram.as_dict()
                )
            else:
                mine_hist.merge(histogram)


def _distance_histogram(interval: int) -> Histogram:
    """Buckets spanning [interval, 2*interval], the reachable range."""
    quarter = max(1, interval // 4)
    return Histogram((interval, interval + quarter, interval + 2 * quarter,
                      interval + 3 * quarter, 2 * interval))


def trial_symptom_latencies(
    level: str,
    record,
    extra_symptoms: tuple[str, ...] = (),
) -> dict[str, int | None]:
    """Per-symptom latency (retired instructions) of one trial record.

    ``extra_symptoms`` names opt-in uarch detectors (the memory-hierarchy
    ablation set) whose latencies live in ``<name>_latency`` record fields;
    records journaled before a detector existed simply report ``None``.
    """
    if level == "arch":
        return {
            "exception": record.exception_latency,
            "cfv": record.cfv_latency,
            "mem-addr": record.memaddr_latency,
            "mem-data": record.memdata_latency,
        }
    if level == "uarch":
        latencies: dict[str, int | None] = {
            "deadlock": record.deadlock_latency,
            "exception": record.exception_latency,
            "cfv": record.cfv_latency,
            "hc_mispredict": record.cfv_detected_latency,
        }
        for name in extra_symptoms:
            if name not in latencies:
                latencies[name] = getattr(record, f"{name}_latency", None)
        return latencies
    raise ValueError(f"unknown campaign level {level!r}")


def _inject_position(level: str, record) -> int:
    """Architectural position (retired instructions) of the injection."""
    if level == "arch":
        return record.inject_step
    return getattr(record, "inject_retired", 0)


def merge_campaign_metrics(parts) -> CampaignMetrics:
    """Merge an iterable of :class:`CampaignMetrics` shards into one.

    The inputs are not mutated. Raises :class:`ValueError` when ``parts``
    is empty or the shards disagree on the campaign level.
    """
    merged: CampaignMetrics | None = None
    for part in parts:
        if merged is None:
            merged = CampaignMetrics.from_entry(part.to_entry())
        else:
            merged.merge(part)
    if merged is None:
        raise ValueError("cannot merge an empty collection of metrics")
    return merged


def aggregate_campaign(
    level: str,
    records,
    intervals: tuple[int, ...] = DEFAULT_INTERVALS,
    extra_symptoms: tuple[str, ...] = (),
) -> CampaignMetrics:
    """Aggregate trial records into detector and rollback metrics.

    ``records`` are :class:`~repro.faults.classify.ArchTrialResult` /
    :class:`~repro.faults.classify.UarchTrialResult` objects (the ``ok``
    trials of a campaign, as replayed from a journal or produced live).
    ``extra_symptoms`` adds opt-in uarch detector columns (for campaigns
    configured with memory-hierarchy detectors); at its ``()`` default the
    telemetry entry is byte-identical to what older versions wrote.
    """
    symptoms: tuple[str, ...] = ARCH_SYMPTOMS if level == "arch" else UARCH_SYMPTOMS
    if level != "arch":
        symptoms += tuple(n for n in extra_symptoms if n not in symptoms)
    metrics = CampaignMetrics(
        level=level,
        detectors={name: DetectorMetrics(name) for name in symptoms},
        rollback_distance={
            interval: _distance_histogram(interval) for interval in intervals
        },
    )
    for record in records:
        metrics.trials += 1
        failing = bool(record.failing)
        if failing:
            metrics.failing += 1
        latencies = trial_symptom_latencies(level, record, extra_symptoms)
        first_latency: int | None = None
        for name, latency in latencies.items():
            detector = metrics.detectors[name]
            if failing:
                detector.failing_trials += 1
            else:
                detector.benign_trials += 1
            if latency is None:
                continue
            if failing:
                detector.fired_on_failing += 1
                if first_latency is None or latency < first_latency:
                    first_latency = latency
            else:
                detector.fired_on_benign += 1
            detector.latency.add(latency)
        if first_latency is None:
            continue
        # The rollback implied by the earliest symptom: restore the older
        # of the two live checkpoints straddling the symptom position.
        position = _inject_position(level, record) + first_latency
        for interval, histogram in metrics.rollback_distance.items():
            if first_latency <= interval:
                histogram.add(interval + position % interval)
    return metrics


class CounterSet:
    """A named bundle of monotonic event counters with exact merge.

    The service-resilience analogue of :class:`CampaignMetrics`: the
    scheduler and workers tally protocol-level events (lease expiries,
    retries, duplicate completes, dead-letters) into one of these, shards
    merge by integer addition, and ``/api/metrics`` serves the result.
    Unknown names spring into existence at zero so adding a new counter
    never breaks an old reader, and serialization is a flat dict —
    the same greppable/diffable shape as every other telemetry entry.
    """

    def __init__(self, initial: dict[str, int] | None = None):
        self._counts: dict[str, int] = dict(initial or {})

    def bump(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to ``name`` (created at zero); returns the total."""
        self._counts[name] = self._counts.get(name, 0) + amount
        return self._counts[name]

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def merge(self, other: "CounterSet") -> None:
        for name, value in other._counts.items():
            self.bump(name, value)

    def to_entry(self) -> dict[str, int]:
        return dict(sorted(self._counts.items()))

    @classmethod
    def from_entry(cls, entry: dict[str, int]) -> "CounterSet":
        return cls({str(k): int(v) for k, v in entry.items()})
