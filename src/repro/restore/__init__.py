"""The ReStore architecture: symptom-based soft error detection + recovery.

Components (Sections 2 and 3 of the paper):

- :mod:`repro.restore.checkpoint` — periodic architectural checkpoints
  (register snapshot + gated store buffer), two live at all times so a
  rollback always reaches back at least one full interval.
- :mod:`repro.restore.symptoms` — the symptom detector framework and the
  paper's detectors: ISA exceptions, high-confidence branch mispredictions
  (JRS-gated), watchdog deadlock, and the cache/TLB-miss candidates of
  Section 3.3.
- :mod:`repro.restore.eventlog` — event logs: the branch outcome log that
  (a) provides perfect control-flow prediction during re-execution and
  (b) detects soft errors by comparing original and redundant executions;
  and the load value queue for input replication.
- :mod:`repro.restore.controller` — the rollback controller: symptom ->
  checkpoint restoration, re-execution tracking, false-positive accounting,
  third-execution arbitration, and dynamic threshold tuning.
- :mod:`repro.restore.hardened` — the "low-hanging fruit" parity/ECC
  protection map layered under ReStore in Section 5.2.2.
"""

from repro.restore.checkpoint import (
    Checkpoint,
    CheckpointManager,
    MappingCheckpointManager,
)
from repro.restore.controller import ReStoreController, RollbackPolicy
from repro.restore.eventlog import BranchOutcomeLog, LoadValueQueue
from repro.restore.hardened import ProtectionMap, protection_overhead_bits
from repro.restore.symptoms import (
    MEMHIER_DETECTOR_NAMES,
    CacheMissSymptomDetector,
    ExceptionSymptomDetector,
    HighConfidenceMispredictDetector,
    MissRateSpikeDetector,
    SpuriousMemopDetector,
    StallOutlierDetector,
    SymptomDetector,
    WatchdogSymptomDetector,
    build_memhier_detectors,
)

__all__ = [
    "BranchOutcomeLog",
    "CacheMissSymptomDetector",
    "Checkpoint",
    "CheckpointManager",
    "ExceptionSymptomDetector",
    "HighConfidenceMispredictDetector",
    "LoadValueQueue",
    "MEMHIER_DETECTOR_NAMES",
    "MappingCheckpointManager",
    "MissRateSpikeDetector",
    "ProtectionMap",
    "ReStoreController",
    "RollbackPolicy",
    "SpuriousMemopDetector",
    "StallOutlierDetector",
    "SymptomDetector",
    "WatchdogSymptomDetector",
    "build_memhier_detectors",
    "protection_overhead_bits",
]
