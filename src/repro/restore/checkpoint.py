"""Architectural checkpointing (Section 2.1).

A checkpoint is "a snapshot of the architectural register file and memory
image at an instance in time". Registers are checkpointed by explicit copy
(values plus the retirement RAT); memory is checkpointed by gating the
committed-store buffer — stores retired after a checkpoint stay in the
buffer until the checkpoint is released, so rolling back is just a
truncation.

Two checkpoints are live at all times (Section 5.2.3): restoring the
*older* one guarantees a rollback distance of at least one full interval,
so the average rollback distance is 1.5 intervals.

The checkpoint store itself is assumed ECC-protected ("the checkpointed
state of the processor needs to be hardened against data corruption ...
protected with ECC for recoverability"), so its contents are not
fault-injection targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.pipeline import Pipeline, RetiredInst


@dataclass(frozen=True)
class Checkpoint:
    """One architectural snapshot."""

    retired_count: int  # architectural position (instructions retired)
    resume_pc: int  # PC of the next instruction after the checkpoint
    rat: tuple[int, ...]  # architectural register alias table
    reg_values: tuple[int, ...]  # 32 architectural register values
    storebuf_tail: int  # gated store buffer push sequence at creation


class CheckpointManager:
    """Creates checkpoints every ``interval`` retired instructions.

    Installs itself as a retire observer on the pipeline; the controller
    (or a campaign) reads ``checkpoints`` and calls :meth:`rollback`.
    """

    def __init__(self, pipeline: Pipeline, interval: int, *, telemetry=None):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.pipeline = pipeline
        self.interval = interval
        self.telemetry = telemetry
        pipeline.store_buffer_gated = True
        self.checkpoints: list[Checkpoint] = []
        self.created = 0
        self.released = 0
        self._since_last = 0
        # Initial checkpoint at the current architectural state.
        self._create(pipeline._fetch_pc[0])
        pipeline.storebuf_full_hook = self.force_checkpoint

    @property
    def since_last_checkpoint(self) -> int:
        """Instructions retired since the newest checkpoint was created."""
        return self._since_last

    def _emit(self, kind: str, checkpoint: Checkpoint) -> None:
        if self.telemetry is None:
            return
        self.telemetry.emit({
            "kind": kind,
            "cycle": self.pipeline.cycle_count,
            "position": self.pipeline.retired_count,
            "checkpoint_position": checkpoint.retired_count,
        })

    # ------------------------------------------------------------- creation

    def note_retirement(self, record: RetiredInst) -> None:
        """Called for every retired instruction (via the controller)."""
        self._since_last += 1
        if self._since_last >= self.interval:
            # The retire hook runs before the pipeline increments its
            # retired count, and the checkpoint sits *after* the retiring
            # instruction (it resumes at record.next_pc) — hence the +1.
            self._create(record.next_pc, position_offset=1)

    def force_checkpoint(self, resume_pc: int) -> None:
        """Forced checkpoint (gated store buffer full, or an external
        synchronization event per Section 2.1). Creating it releases the
        oldest checkpoint's store-buffer segment, freeing space; under
        sustained store pressure the effective rollback window shrinks,
        exactly as in a real bounded gated buffer."""
        self._create(resume_pc)

    def _create(self, resume_pc: int, position_offset: int = 0) -> None:
        pipeline = self.pipeline
        checkpoint = Checkpoint(
            retired_count=pipeline.retired_count + position_offset,
            resume_pc=resume_pc,
            rat=tuple(pipeline.arch_rat.map),
            reg_values=self._capture_reg_values(),
            storebuf_tail=pipeline.storebuf.total_pushed,
        )
        self.checkpoints.append(checkpoint)
        self._on_created(checkpoint)
        self._emit("checkpoint_create", checkpoint)
        self.created += 1
        self._since_last = 0
        if len(self.checkpoints) > 2:
            released = self.checkpoints.pop(0)
            self.released += 1
            self._on_released(released)
            self._emit("checkpoint_release", released)
            # Stores older than the *new oldest* checkpoint are now
            # unconditionally committed: release them to memory.
            self.pipeline.drain_store_buffer_until(
                self.checkpoints[0].storebuf_tail
            )

    # Hooks overridden by the mapping-based variant. ------------------------

    def _capture_reg_values(self) -> tuple[int, ...]:
        """Explicit-copy scheme: snapshot the architectural values."""
        return tuple(self.pipeline.arch_reg_values())

    def _on_created(self, checkpoint: Checkpoint) -> None:
        """Extension point (pinning, logging, ...)."""

    def _on_released(self, checkpoint: Checkpoint) -> None:
        """Extension point (unpinning, logging, ...)."""

    def _restore_registers(self, checkpoint: Checkpoint) -> None:
        """Explicit-copy scheme: write the values back through the RAT."""
        pipeline = self.pipeline
        pipeline.arch_rat.restore(list(checkpoint.rat))
        for areg in range(32):
            pipeline.prf.values[checkpoint.rat[areg]] = checkpoint.reg_values[areg]

    # ------------------------------------------------------------- rollback

    @property
    def oldest(self) -> Checkpoint:
        return self.checkpoints[0]

    @property
    def newest(self) -> Checkpoint:
        return self.checkpoints[-1]

    def rollback(self, checkpoint: Checkpoint | None = None) -> Checkpoint:
        """Restore a checkpoint (the oldest by default) and flush.

        Returns the restored checkpoint. The pipeline resumes fetching at
        the checkpoint's resume PC; ``retired_count`` rewinds to the
        checkpoint's architectural position (``total_retired`` does not).
        """
        pipeline = self.pipeline
        if checkpoint is None:
            checkpoint = self.oldest
        if checkpoint not in self.checkpoints:
            raise ValueError("cannot roll back to a released checkpoint")
        # Discard younger committed stores.
        pipeline.storebuf.truncate_to(checkpoint.storebuf_tail)
        # Restore the register file through the checkpointed RAT.
        self._restore_registers(checkpoint)
        pipeline.full_flush(checkpoint.resume_pc)
        pipeline.retired_count = checkpoint.retired_count
        # Drop any checkpoint younger than the restored one.
        position = self.checkpoints.index(checkpoint)
        del self.checkpoints[position + 1:]
        self._since_last = 0
        return checkpoint


class MappingCheckpointManager(CheckpointManager):
    """Mapping-based register checkpointing (the paper's second variant).

    Instead of copying the 32 architectural register *values*, a checkpoint
    saves only the retirement RAT and pins the physical registers it maps:
    pinned registers never return to the free list, so their values survive
    in the PRF until the checkpoint is released, and a rollback is just a
    RAT restore. This is the cheaper scheme today's processors use for
    speculation recovery ("saving the current mapping between architectural
    registers and physical registers").

    The cost is register pressure: with two live checkpoints up to two
    RATs' worth of physical registers are pinned. When the free list runs
    low, the manager forces an early checkpoint (releasing the oldest and
    unpinning its registers), mirroring how bounded rename resources force
    checkpoint cadence in hardware.
    """

    def __init__(self, pipeline: Pipeline, interval: int,
                 low_free_threshold: int = 8, *, telemetry=None):
        self._pins: dict[int, int] = {}
        self._deferred: set[int] = set()
        self.low_free_threshold = low_free_threshold
        self.forced_by_pressure = 0
        super().__init__(pipeline, interval, telemetry=telemetry)
        pipeline.preg_free_hook = self._maybe_defer_free

    # -- pinning ----------------------------------------------------------

    def _pin_all(self, rat: tuple[int, ...]) -> None:
        for preg in rat:
            self._pins[preg] = self._pins.get(preg, 0) + 1

    def _unpin_all(self, rat: tuple[int, ...]) -> None:
        for preg in rat:
            remaining = self._pins.get(preg, 0) - 1
            if remaining <= 0:
                self._pins.pop(preg, None)
            else:
                self._pins[preg] = remaining
        self._flush_deferred()

    def _flush_deferred(self) -> None:
        still_deferred = set()
        for preg in self._deferred:
            if preg in self._pins or preg in self.pipeline.arch_rat.map:
                still_deferred.add(preg)
            else:
                self.pipeline.freelist.free(preg)
        self._deferred = still_deferred

    def _maybe_defer_free(self, preg: int) -> bool:
        if preg in self._pins:
            self._deferred.add(preg)
            return True
        return False

    def pinned_registers(self) -> set[int]:
        return set(self._pins)

    # -- checkpoint lifecycle overrides ------------------------------------

    def note_retirement(self, record: RetiredInst) -> None:
        if (
            self.pipeline.freelist.count < self.low_free_threshold
            and len(self.checkpoints) > 1
        ):
            # Rename pressure: release the oldest checkpoint early so its
            # pinned registers flow back to the free list.
            self.forced_by_pressure += 1
            self._create(record.next_pc, position_offset=1)
            return
        super().note_retirement(record)

    def _capture_reg_values(self) -> tuple[int, ...]:
        return ()  # values stay in the PRF, protected by pinning

    def _on_created(self, checkpoint: Checkpoint) -> None:
        self._pin_all(checkpoint.rat)

    def _on_released(self, checkpoint: Checkpoint) -> None:
        self._unpin_all(checkpoint.rat)

    def _restore_registers(self, checkpoint: Checkpoint) -> None:
        # The RAT restore is the whole job; pinned values are still live.
        self.pipeline.arch_rat.restore(list(checkpoint.rat))

    def rollback(self, checkpoint: Checkpoint | None = None) -> Checkpoint:
        if checkpoint is None:
            checkpoint = self.oldest
        position = self.checkpoints.index(checkpoint)
        dropped = self.checkpoints[position + 1:]
        restored = super().rollback(checkpoint)
        for younger in dropped:
            self._unpin_all(younger.rat)
        # full_flush rebuilt the free list from the restored RAT only;
        # rebuild again excluding every still-pinned register and clear the
        # deferred list (those registers are free unless pinned or mapped).
        in_use = set(self.pipeline.arch_rat.map) | set(self._pins)
        self.pipeline.freelist.rebuild(in_use)
        # Keep pending frees only for registers pinned by an *older* live
        # checkpoint and not back in the restored mapping; registers back in
        # the architectural RAT will be deferred afresh when re-execution
        # renames them (keeping the stale entry would free them twice).
        restored_map = set(self.pipeline.arch_rat.map)
        self._deferred = {
            preg
            for preg in self._deferred
            if preg in self._pins and preg not in restored_map
        }
        return restored
