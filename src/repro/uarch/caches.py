"""Cache and TLB timing models.

These model hit/miss behaviour only — data always comes from the memory
image, since an L1 in a single-core model is always coherent with it. They
exist for two reasons: realistic load/fetch latencies, and the cache/TLB
*miss symptoms* discussed in Section 3.3 (rare-in-steady-state events that
a soft error can trigger, candidates for symptom-based detection).

Cache and TLB arrays are not fault-injection targets (the paper excludes
them: parity/ECC protect them cheaply).
"""

from __future__ import annotations


class SetAssociativeCache:
    """Tag-only set-associative cache with LRU replacement."""

    def __init__(self, sets: int, ways: int, line_bytes: int):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self.line_bytes = line_bytes
        self._tags: list[list[int]] = [[-1] * ways for _ in range(sets)]
        # LRU order per set: index 0 = most recent.
        self._order: list[list[int]] = [list(range(ways)) for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _set_tag(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.sets, line // self.sets

    def access(self, address: int) -> bool:
        """Access a line; returns True on hit. Misses fill (allocate)."""
        line = address // self.line_bytes
        set_index = line % self.sets
        tag = line // self.sets
        tags = self._tags[set_index]
        order = self._order[set_index]
        for position, way in enumerate(order):
            if tags[way] == tag:
                if position:  # already MRU otherwise; moving is a no-op
                    order.insert(0, order.pop(position))
                self.hits += 1
                return True
        # Miss: replace the LRU way.
        victim = order.pop()
        tags[victim] = tag
        order.insert(0, victim)
        self.misses += 1
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or filling."""
        set_index, tag = self._set_tag(address)
        return tag in self._tags[set_index]


class Tlb:
    """Fully-associative TLB with FIFO replacement."""

    def __init__(self, entries: int, page_shift: int = 13):
        self.entries = entries
        self.page_shift = page_shift
        self._pages: list[int] = []
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate; returns True on hit. Misses fill."""
        page = address >> self.page_shift
        if page in self._pages:
            self.hits += 1
            return True
        self.misses += 1
        self._pages.append(page)
        if len(self._pages) > self.entries:
            self._pages.pop(0)
        return False
