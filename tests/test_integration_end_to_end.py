"""End-to-end integration: faults through the full ReStore stack.

These tests exercise the complete story the paper tells: inject a soft
error into the running pipeline, watch a symptom fire, roll back, and land
on the correct architectural outcome — and quantify how much ReStore helps
versus the same faults on an unprotected machine.
"""

import pytest

from repro.restore import ReStoreController
from repro.uarch import load_pipeline
from repro.uarch.latches import LATCH_CLASSES
from repro.util.rng import DeterministicRng
from repro.workloads import build_workload

WORKLOAD = "gzip"
FAULTS = 40


def outcome_of(pipeline, bundle) -> str:
    if not pipeline.halted:
        return "crash"
    if bundle.check(pipeline.memory):
        return "sdc"
    return "correct"


@pytest.fixture(scope="module")
def paired_fault_outcomes():
    """Run the same latch faults on baseline and ReStore pipelines."""
    results = []
    for seed in range(FAULTS):
        rng = DeterministicRng(seed).child("e2e")
        inject_cycle = 300 + rng.randrange(2_500)
        per_fault = {}
        for config in ("baseline", "restore"):
            bundle = build_workload(WORKLOAD)
            pipeline = load_pipeline(bundle.program)
            controller = None
            if config == "restore":
                controller = ReStoreController(pipeline, interval=100)
            pipeline.run(inject_cycle)
            pick = DeterministicRng(seed).child("bit")
            field, bit = pipeline.registry.pick_bit(pick, classes=LATCH_CLASSES)
            field.flip(bit)
            pipeline.run(3_000_000)
            per_fault[config] = (outcome_of(pipeline, bundle), controller)
        results.append(per_fault)
    return results


class TestRestoreHelps:
    def test_restore_never_worse_much(self, paired_fault_outcomes):
        baseline_bad = sum(
            1 for r in paired_fault_outcomes if r["baseline"][0] != "correct"
        )
        restore_bad = sum(
            1 for r in paired_fault_outcomes if r["restore"][0] != "correct"
        )
        # ReStore must not lose to the baseline (sampling noise aside).
        assert restore_bad <= baseline_bad + 1

    def test_restore_recovers_some_baseline_failures(self, paired_fault_outcomes):
        rescued = sum(
            1
            for r in paired_fault_outcomes
            if r["baseline"][0] != "correct" and r["restore"][0] == "correct"
        )
        baseline_bad = sum(
            1 for r in paired_fault_outcomes if r["baseline"][0] != "correct"
        )
        if baseline_bad >= 3:
            assert rescued >= 1, (
                f"{baseline_bad} baseline failures but none rescued"
            )

    def test_most_faults_masked_either_way(self, paired_fault_outcomes):
        """Figure 4's intrinsic masking: the large majority of flips are
        harmless even without any protection."""
        baseline_ok = sum(
            1 for r in paired_fault_outcomes if r["baseline"][0] == "correct"
        )
        assert baseline_ok >= FAULTS * 0.6


class TestControllerAccounting:
    def test_rollback_statistics_are_consistent(self, paired_fault_outcomes):
        for result in paired_fault_outcomes:
            controller = result["restore"][1]
            stats = controller.stats
            assert stats.rollbacks >= stats.false_positives
            assert stats.rollbacks >= 0
            assert controller.checkpoints.created >= 1

    def test_detected_errors_only_with_rollbacks(self, paired_fault_outcomes):
        for result in paired_fault_outcomes:
            stats = result["restore"][1].stats
            if stats.detected_errors:
                assert stats.rollbacks >= 1
