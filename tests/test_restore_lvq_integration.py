"""Load value queue verification during re-execution."""

from repro.restore import ReStoreController
from repro.uarch import load_pipeline
from repro.workloads import build_workload


class TestLvqDuringReexecution:
    def test_fault_free_reexecution_matches_lvq(self):
        """Fault-free rollbacks (false positives) re-execute with identical
        memory inputs, so the LVQ comparison must never mismatch."""
        bundle = build_workload("bzip2")  # rollback-prone
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(pipeline, interval=50)
        pipeline.run(2_000_000)
        assert pipeline.halted
        assert controller.stats.rollbacks > 0, "needs at least one rollback"
        assert controller.stats.lvq_mismatches == 0

    def test_lvq_records_loads(self):
        bundle = build_workload("gzip")
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(pipeline, interval=100)
        pipeline.run(3_000)
        assert len(controller.lvq) > 0

    def test_lvq_pruned_with_checkpoints(self):
        """The LVQ only needs entries back to the oldest checkpoint."""
        bundle = build_workload("gzip")
        pipeline = load_pipeline(bundle.program)
        controller = ReStoreController(pipeline, interval=50)
        pipeline.run(2_000_000)
        oldest = controller.checkpoints.oldest.retired_count
        positions = list(controller.lvq._entries)
        assert all(position >= oldest for position in positions)
