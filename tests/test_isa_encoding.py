"""Instruction word encoding and decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import opcodes as op
from repro.isa.encoding import (
    HALT_WORD,
    IllegalInstructionError,
    decode_word,
    encode_branch,
    encode_jump,
    encode_memory,
    encode_operate,
    try_decode_word,
)

regs = st.integers(0, 31)
OPERATE_SPECS = [s for s in op.ALL_SPECS if s.format is op.Format.OPERATE]
MEMORY_SPECS = [s for s in op.ALL_SPECS if s.format is op.Format.MEMORY]
BRANCH_SPECS = [s for s in op.ALL_SPECS if s.format is op.Format.BRANCH]
JUMP_SPECS = [s for s in op.ALL_SPECS if s.format is op.Format.JUMP]


class TestOperateRoundtrip:
    @given(
        st.sampled_from(OPERATE_SPECS), regs, regs, regs
    )
    def test_register_form(self, spec, ra, rb, rc):
        word = encode_operate(spec.opcode, spec.func, ra, rb, rc, is_literal=False)
        inst = decode_word(word)
        assert inst.mnemonic == spec.mnemonic
        assert (inst.ra, inst.rb, inst.rc) == (ra, rb, rc)
        assert not inst.is_literal

    @given(
        st.sampled_from(OPERATE_SPECS), regs, st.integers(0, 255), regs
    )
    def test_literal_form(self, spec, ra, literal, rc):
        word = encode_operate(spec.opcode, spec.func, ra, literal, rc, is_literal=True)
        inst = decode_word(word)
        assert inst.mnemonic == spec.mnemonic
        assert inst.is_literal and inst.literal == literal
        assert (inst.ra, inst.rc) == (ra, rc)

    def test_literal_out_of_range(self):
        with pytest.raises(ValueError):
            encode_operate(op.OP_INTA, op.FUNC_ADDQ, 0, 256, 0, is_literal=True)


class TestMemoryRoundtrip:
    @given(
        st.sampled_from(MEMORY_SPECS), regs, regs,
        st.integers(-(1 << 15), (1 << 15) - 1),
    )
    def test_roundtrip(self, spec, ra, rb, disp):
        word = encode_memory(spec.opcode, ra, rb, disp)
        inst = decode_word(word)
        assert inst.mnemonic == spec.mnemonic
        assert (inst.ra, inst.rb) == (ra, rb)
        signed = inst.disp if inst.disp < (1 << 63) else inst.disp - (1 << 64)
        assert signed == disp

    def test_displacement_range_enforced(self):
        with pytest.raises(ValueError):
            encode_memory(op.OP_LDQ, 0, 0, 1 << 15)


class TestBranchRoundtrip:
    @given(
        st.sampled_from(BRANCH_SPECS), regs,
        st.integers(-(1 << 20), (1 << 20) - 1),
    )
    def test_roundtrip(self, spec, ra, disp):
        word = encode_branch(spec.opcode, ra, disp)
        inst = decode_word(word)
        assert inst.mnemonic == spec.mnemonic
        assert inst.ra == ra
        signed = inst.disp if inst.disp < (1 << 63) else inst.disp - (1 << 64)
        assert signed == disp

    def test_displacement_range_enforced(self):
        with pytest.raises(ValueError):
            encode_branch(op.OP_BR, 0, 1 << 20)


class TestJumpRoundtrip:
    @given(st.sampled_from(JUMP_SPECS), regs, regs)
    def test_roundtrip(self, spec, ra, rb):
        word = encode_jump(ra, rb, spec.jump_hint)
        inst = decode_word(word)
        assert inst.mnemonic == spec.mnemonic
        assert (inst.ra, inst.rb) == (ra, rb)


class TestIllegal:
    def test_halt_is_all_zero(self):
        assert decode_word(HALT_WORD).is_halt

    def test_nonzero_pal_is_illegal(self):
        with pytest.raises(IllegalInstructionError):
            decode_word(0x0000_0001)

    def test_undefined_opcode_is_illegal(self):
        word = (0x3F ^ 0x22) << 26  # opcode 0x1D: unused
        assert try_decode_word(word) is None

    def test_undefined_function_code_is_illegal(self):
        word = encode_operate(op.OP_INTA, 0x7F, 1, 2, 3, is_literal=False)
        with pytest.raises(IllegalInstructionError):
            decode_word(word)

    @given(st.integers(0, (1 << 32) - 1))
    def test_decode_never_crashes(self, word):
        inst = try_decode_word(word)
        if inst is not None:
            assert 0 <= inst.ra < 32
            assert 0 <= inst.rb < 32
            assert 0 <= inst.rc < 32
