#!/usr/bin/env python
"""Quickstart: assemble a program, run it, and put ReStore underneath it.

Walks the three layers of the library:

1. the ISA toolchain (assembler -> Program),
2. the architectural simulator (the golden reference),
3. the out-of-order pipeline with a live ReStore controller.

Run: ``python examples/quickstart.py``
"""

from repro.arch import load_program
from repro.isa import assemble, disassemble_program
from repro.restore import ReStoreController
from repro.uarch import load_pipeline

SOURCE = """
# Sum an array, then scramble it with a keyed hash.
.text
start:  la      r1, numbers
        li      r2, 16              # element count
        clr     r3                  # sum
sum:    ldq     r4, 0(r1)
        addq    r3, r4, r3
        lda     r1, 8(r1)
        subq    r2, 1, r2
        bne     r2, sum
        la      r5, total
        stq     r3, 0(r5)

        la      r1, numbers         # second pass: keyed mix
        li      r2, 16
mix:    ldq     r4, 0(r1)
        xor     r4, r3, r4
        stq     r4, 0(r1)
        lda     r1, 8(r1)
        subq    r2, 1, r2
        bne     r2, mix
        halt
.data
numbers:
        .quad 3, 1, 4, 1, 5, 9, 2, 6
        .quad 5, 3, 5, 8, 9, 7, 9, 3
total:  .quad 0
"""


def main() -> None:
    program = assemble(SOURCE, "quickstart")
    print("=== Disassembly (first lines) ===")
    print("\n".join(disassemble_program(program).splitlines()[:8]))

    # Layer 1: the architectural simulator.
    arch = load_program(program)
    arch.run(10_000)
    total = arch.state.memory.read(program.symbol("total"), 8)
    print(f"\narchitectural simulator: retired {arch.retired} instructions, "
          f"total = {total}")
    assert total == sum([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3])

    # Layer 2: the cycle-level out-of-order pipeline.
    pipeline = load_pipeline(program, collect_retired=True)
    pipeline.run(100_000)
    ipc = pipeline.retired_count / pipeline.cycle_count
    print(f"pipeline: {pipeline.retired_count} instructions in "
          f"{pipeline.cycle_count} cycles (IPC {ipc:.2f}), "
          f"{pipeline.registry.total_bits():,} bits of injectable state")
    assert pipeline.memory.read(program.symbol("total"), 8) == total

    # Layer 3: the same pipeline protected by ReStore.
    protected = load_pipeline(program)
    controller = ReStoreController(protected, interval=50)
    protected.run(100_000)
    print(f"ReStore: {controller.checkpoints.created} checkpoints, "
          f"{controller.stats.rollbacks} rollback(s), "
          f"{controller.stats.false_positives} false positive(s)")
    assert protected.memory.read(program.symbol("total"), 8) == total
    print("\nAll three layers agree. OK")


if __name__ == "__main__":
    main()
