"""The content-addressed golden-artifact store.

Every campaign shard, service worker, and resumed run needs the same
expensive preamble before it can inject a single fault: run the workload
fault-free (the *golden* run), derive the comparator indices, and walk a
prefix simulator to the first injection point. None of that work depends
on which process performs it — it is a pure function of the program
bytes and the scientific configuration — so this module memoizes it on
disk, once per ``(program, config)`` across an entire worker fleet.

Keying
------

An entry's file name is its address::

    <level>-<program-digest>-<config-digest>-v<schema>.pkl

- *program digest* — SHA-256 over the program's segments (name, base,
  raw bytes) and entry point. Any change to the workload's machine code
  or layout produces a different key.
- *config digest* — :func:`repro.util.journal.stable_digest` of the full
  campaign configuration, the same digest the journal manifest records.
  Any knob change (seed, scale, trial counts, fault model …) produces a
  different key. This is deliberately conservative: some knobs cannot
  affect the golden artifacts, but a useless miss is always safe while a
  false hit never is.
- *schema version* — bumped whenever the pickled payload shape changes,
  so an upgraded tool never misreads an old entry.

Atomicity and corruption
------------------------

Writers serialize to a private temporary file in the cache directory and
publish with :func:`os.replace`, so concurrent workers racing to
populate one key each produce a complete entry and the last rename wins
(every racer computed identical bytes anyway). A reader that finds a
truncated, corrupt, or schema-mismatched entry treats it as a miss and
recomputes, surfacing a :class:`CacheCorruptionWarning` — mirroring the
journal's :class:`~repro.util.journal.JournalTearWarning` semantics: a
damaged artifact is an observation, never an error. Cache *write*
failures (read-only directory, disk full) degrade the same way: the
campaign proceeds uncached.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.util.journal import config_to_dict, stable_digest

if TYPE_CHECKING:
    from repro.arch.memory import SparseMemory
    from repro.arch.tracing import ExecutionTrace
    from repro.isa.program import Program

#: Bumped whenever the pickled artifact layout changes; part of the key,
#: so old entries become unreachable (and reclaimable via ``cache clear``)
#: rather than misread.
SCHEMA_VERSION = 2


class CacheCorruptionWarning(UserWarning):
    """A cache entry is unreadable or inconsistent; it was treated as a
    miss and the golden artifacts were recomputed."""


def program_digest(program: "Program") -> str:
    """A stable content digest of a program's machine code and layout."""
    digest = hashlib.sha256()
    for segment in program.segments:
        digest.update(segment.name.encode())
        digest.update(segment.base.to_bytes(8, "little"))
        digest.update(len(segment.data).to_bytes(8, "little"))
        digest.update(bytes(segment.data))
    digest.update(program.entry_point.to_bytes(8, "little"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ArchGoldenArtifact:
    """Everything an arch-campaign workload derives before its first trial:
    the golden trace, with its periodic architectural snapshots and the
    per-step memory-operation prefix counts recorded while it ran (schema
    v2 — v1 entries carried separately re-decoded counts and miss
    cleanly)."""

    trace: "ExecutionTrace"


@dataclass(frozen=True)
class UarchGoldenArtifact:
    """The cacheable outputs of both uarch golden pipeline runs."""

    end_cycle: int
    retired: list
    snapshots: dict[int, list[int]]
    retired_at: dict[int, int]
    final_arch_regs: list[int]
    final_memory: "SparseMemory"


@dataclass
class CacheStats:
    """One directory's contents plus this process's hit/miss tallies."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_level: dict = field(default_factory=dict)
    hits: int = 0
    misses: int = 0


class GoldenArtifactCache:
    """A content-addressed on-disk store of golden-run artifacts.

    One instance may be shared across every workload of a campaign run;
    the on-disk directory may be shared across processes, machines with a
    common filesystem, and CI jobs. All failure modes degrade to cache
    misses — a campaign with a broken cache directory produces exactly
    the journal it would have produced with no cache at all.
    """

    def __init__(self, root: str):
        if not root:
            raise ValueError("cache root must be a non-empty path")
        self.root = root
        self.hits = 0
        self.misses = 0

    # -------------------------------------------------------------- keying

    def entry_path(self, level: str, program: "Program", config: Any) -> str:
        key = (
            f"{level}-{program_digest(program)}-"
            f"{stable_digest(config_to_dict(config))}-v{SCHEMA_VERSION}"
        )
        return os.path.join(self.root, f"{key}.pkl")

    # ------------------------------------------------------------ load/store

    def load(self, level: str, program: "Program", config: Any):
        """The cached artifact for ``(program, config)``, or ``None``.

        Anything short of a well-formed, schema-matching entry — missing
        file, torn write from a pre-atomic tool, pickle from a different
        library version — counts as a miss; damage is reported as a
        :class:`CacheCorruptionWarning`, never raised.
        """
        path = self.entry_path(level, program, config)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict):
                raise ValueError(f"unexpected payload type {type(payload)!r}")
            if payload.get("schema") != SCHEMA_VERSION:
                raise ValueError(
                    f"schema {payload.get('schema')!r} != {SCHEMA_VERSION}"
                )
            artifact = payload["artifact"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:
            warnings.warn(
                f"{path}: corrupt or incompatible cache entry "
                f"({type(exc).__name__}: {exc}); recomputing golden artifacts",
                CacheCorruptionWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def store(
        self, level: str, program: "Program", config: Any, artifact: Any
    ) -> bool:
        """Publish an artifact atomically; False (with a warning) on failure.

        Single-writer semantics come from the private temporary file:
        racing writers never interleave bytes, and ``os.replace`` makes
        the entry appear complete or not at all.
        """
        path = self.entry_path(level, program, config)
        # The temp name must be private to this *writer*, not just this
        # process: worker threads sharing a PID would otherwise interleave
        # on one temp file and publish a torn entry.
        tmp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(tmp_path, "wb") as handle:
                pickle.dump(
                    {"schema": SCHEMA_VERSION, "artifact": artifact},
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp_path, path)
        except Exception as exc:
            warnings.warn(
                f"{path}: could not write cache entry "
                f"({type(exc).__name__}: {exc}); campaign continues uncached",
                CacheCorruptionWarning,
                stacklevel=2,
            )
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        return True

    # ---------------------------------------------------------- maintenance

    def stats(self) -> CacheStats:
        """Directory contents plus this process's hit/miss counters."""
        stats = CacheStats(root=self.root, hits=self.hits, misses=self.misses)
        for name, size in self._entries():
            stats.entries += 1
            stats.total_bytes += size
            level = name.split("-", 1)[0]
            stats.by_level[level] = stats.by_level.get(level, 0) + 1
        return stats

    def clear(self) -> int:
        """Delete every cache entry (and stray temp file); returns count."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return 0
        for name in names:
            if not (name.endswith(".pkl") or ".pkl.tmp." in name):
                continue
            try:
                os.unlink(os.path.join(self.root, name))
                removed += 1
            except OSError:
                continue
        return removed

    def _entries(self):
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return
        for name in sorted(names):
            if not name.endswith(".pkl"):
                continue
            try:
                size = os.path.getsize(os.path.join(self.root, name))
            except OSError:
                continue
            yield name, size


def format_cache_stats(stats: CacheStats) -> str:
    """A human-readable ``repro cache stats`` report."""
    lines = [
        f"cache: {stats.root}",
        f"entries: {stats.entries} ({stats.total_bytes / 1024:.1f} KiB)",
    ]
    for level in sorted(stats.by_level):
        lines.append(f"  {level}: {stats.by_level[level]} entr"
                     f"{'y' if stats.by_level[level] == 1 else 'ies'}")
    return "\n".join(lines)
