"""The two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.encoding import decode_word
from repro.isa.program import DATA_BASE, TEXT_BASE
from repro.isa.registers import REG_RA, REG_ZERO


def first_inst(source: str):
    program = assemble(f".text\n{source}\n")
    return decode_word(program.text_words[0])


class TestOperateSyntax:
    def test_register_form(self):
        inst = first_inst("addq r1, r2, r3")
        assert inst.mnemonic == "addq"
        assert (inst.ra, inst.rb, inst.rc) == (1, 2, 3)

    def test_literal_form(self):
        inst = first_inst("addq r1, 42, r3")
        assert inst.is_literal and inst.literal == 42

    def test_aliases(self):
        inst = first_inst("bis sp, zero, ra")
        assert (inst.ra, inst.rb, inst.rc) == (30, 31, 26)

    def test_literal_range_checked(self):
        with pytest.raises(AssemblerError):
            assemble(".text\naddq r1, 300, r2\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nfrobnicate r1, r2, r3\n")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble(".text\naddq r99, r1, r2\n")


class TestMemorySyntax:
    def test_displacement(self):
        inst = first_inst("ldq r4, -16(sp)")
        assert inst.mnemonic == "ldq"
        assert inst.ra == 4 and inst.rb == 30
        assert inst.disp == (-16) % (1 << 64)

    def test_zero_displacement_implied_base(self):
        inst = first_inst("ldq r4, (r5)")
        assert inst.rb == 5 and inst.disp == 0

    def test_too_large_displacement(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nldq r1, 40000(r2)\n")


class TestBranchesAndLabels:
    def test_backward_branch(self):
        program = assemble(
            ".text\nloop: addq r1, 1, r1\n      bne r1, loop\n"
        )
        branch = decode_word(program.text_words[1])
        assert branch.branch_target(TEXT_BASE + 4) == TEXT_BASE

    def test_forward_branch(self):
        program = assemble(".text\n  beq r1, done\n  nop\ndone: halt\n")
        branch = decode_word(program.text_words[0])
        assert branch.branch_target(TEXT_BASE) == TEXT_BASE + 8

    def test_bsr_default_link_register(self):
        inst = first_inst("bsr func\nfunc: nop")
        assert inst.ra == REG_RA

    def test_br_default_no_link(self):
        inst = first_inst("br next\nnext: nop")
        assert inst.ra == REG_ZERO

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nx: nop\nx: nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nbr nowhere\n")


class TestJumps:
    def test_ret_defaults_to_ra(self):
        inst = first_inst("ret")
        assert inst.is_return and inst.rb == REG_RA

    def test_jsr_explicit(self):
        inst = first_inst("jsr ra, (r5)")
        assert inst.is_call and inst.ra == REG_RA and inst.rb == 5

    def test_jmp_single_operand(self):
        inst = first_inst("jmp (r7)")
        assert inst.rb == 7 and inst.ra == REG_ZERO


class TestPseudoInstructions:
    def test_nop(self):
        inst = first_inst("nop")
        assert inst.mnemonic == "bis"
        assert inst.dest_reg is None

    def test_mov_register(self):
        inst = first_inst("mov r3, r4")
        assert inst.mnemonic == "bis" and inst.rc == 4

    def test_mov_small_immediate(self):
        inst = first_inst("mov 9, r4")
        assert inst.is_literal and inst.literal == 9

    def test_clr(self):
        inst = first_inst("clr r9")
        assert inst.mnemonic == "bis" and inst.rc == 9 and inst.ra == REG_ZERO

    def test_li_small_is_one_word(self):
        program = assemble(".text\nli r1, 100\n")
        assert len(program.text_words) == 1

    def test_li_large_is_two_words(self):
        program = assemble(".text\nli r1, 0x12345678\n")
        assert len(program.text_words) == 2

    def test_li_too_large_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nli r1, 0x1_0000_0000_0\n")

    def test_la_is_always_two_words(self):
        program = assemble(".text\nla r1, here\nhere: nop\n")
        assert len(program.text_words) == 3


class TestDataDirectives:
    def test_quad_little_endian(self):
        program = assemble(".data\nv: .quad 0x0102030405060708\n")
        assert program.data_bytes[:8] == bytes(
            [8, 7, 6, 5, 4, 3, 2, 1]
        )

    def test_long_and_byte(self):
        program = assemble(".data\n.long 1, 2\n.byte 3, 4\n")
        assert len(program.data_bytes) == 10

    def test_space_zeroed(self):
        program = assemble(".data\n.space 16\n")
        assert program.data_bytes == bytes(16)

    def test_align(self):
        program = assemble(".data\n.byte 1\n.align 8\nv: .quad 2\n")
        assert program.symbol("v") == DATA_BASE + 8

    def test_asciiz(self):
        program = assemble('.data\ns: .asciiz "hi"\n')
        assert program.data_bytes == b"hi\x00"

    def test_quad_with_symbol_expression(self):
        program = assemble(".data\na: .quad 0\nb: .quad a+8\n")
        value = int.from_bytes(program.data_bytes[8:16], "little")
        assert value == DATA_BASE + 8

    def test_directive_in_text_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.quad 1\n")


class TestSymbols:
    def test_start_symbol_sets_entry_point(self):
        program = assemble(".text\nnop\nstart: halt\n")
        assert program.entry_point == TEXT_BASE + 4

    def test_default_entry_point(self):
        program = assemble(".text\nnop\n")
        assert program.entry_point == TEXT_BASE

    def test_comments_stripped(self):
        program = assemble(".text\nnop  # comment\nnop ; also\n")
        assert len(program.text_words) == 2
