"""Event logs (Section 3.2.3).

"To support the implementation of ReStore, we propose event logs that track
and record the events leading up to a symptom." The logs serve three roles:

1. **Error detection during re-execution**: the branch-outcome log records
   control instruction outcomes of the original execution; during the
   redundant execution the controller compares outcomes as they retire —
   a divergence means a soft error occurred in one of the two executions.
2. **Speculation hints**: during re-execution the log acts as a
   near-perfect branch predictor ("a branch outcome event log is used to
   provide perfect prediction of control flow, eliminating control
   misspeculations during re-execution").
3. **Input replication**: the load value queue records load values so the
   redundant execution observes the same memory inputs (as in SRT's load
   value queue, reference [23]).

Entries are keyed by the *architectural position* (the pipeline's retired
instruction count, which rewinds on rollback), so original and redundant
executions line up by construction.
"""

from __future__ import annotations

from collections import defaultdict, deque


class BranchOutcomeLog:
    """Conditional-branch outcomes, recorded by architectural position.

    Also implements the pipeline's ``branch_oracle`` protocol
    (``predict`` / ``on_retire`` / ``on_flush``) for replay: fetch *peeks*
    the next un-retired occurrence of a PC (tracking in-flight fetches,
    which rewind on pipeline flushes) and retirement *consumes* it.
    """

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self._entries: dict[int, tuple[int, bool]] = {}  # position -> (pc, taken)
        # Effectively ascending positions: a position is appended only on
        # its first recording, and re-execution re-records existing
        # positions without appending, so eviction and pruning are O(1)
        # popleft operations. (A divergent re-execution retiring a branch
        # at a brand-new position can append out of order; pruning then
        # defers the straggler to a later prune or capacity eviction.)
        self._order: deque[int] = deque()
        # Replay state.
        self._by_pc: dict[int, list[bool]] = {}
        self._retired_index: dict[int, int] = {}
        self._fetched_index: dict[int, int] = {}
        self.replaying = False

    # ----------------------------------------------------------- recording

    def record(self, position: int, pc: int, taken: bool) -> None:
        """Record a retired conditional branch (normal-mode execution)."""
        if position not in self._entries:
            if len(self._order) >= self.capacity:
                evicted = self._order.popleft()
                self._entries.pop(evicted, None)
            self._order.append(position)
        self._entries[position] = (pc, taken)

    def outcome_at(self, position: int) -> tuple[int, bool] | None:
        return self._entries.get(position)

    def prune_before(self, position: int) -> None:
        """Drop entries older than ``position`` (a released checkpoint)."""
        order = self._order
        while order and order[0] < position:
            self._entries.pop(order.popleft(), None)

    def __len__(self) -> int:
        return len(self._order)

    # -------------------------------------------------------------- replay

    def begin_replay(self, from_position: int) -> None:
        """Freeze outcomes at or after ``from_position`` for replay."""
        by_pc: dict[int, list[bool]] = defaultdict(list)
        for position in sorted(self._order):
            if position < from_position:
                continue
            pc, taken = self._entries[position]
            by_pc[pc].append(taken)
        self._by_pc = dict(by_pc)
        self._retired_index = {pc: 0 for pc in self._by_pc}
        self._fetched_index = {pc: 0 for pc in self._by_pc}
        self.replaying = True

    def end_replay(self) -> None:
        self.replaying = False
        self._by_pc = {}
        self._retired_index = {}
        self._fetched_index = {}

    # Oracle protocol -----------------------------------------------------

    def predict(self, pc: int) -> bool | None:
        """Outcome hint for the next fetch of ``pc`` (None = no hint)."""
        if not self.replaying:
            return None
        outcomes = self._by_pc.get(pc)
        if outcomes is None:
            return None
        index = self._fetched_index.get(pc, 0)
        if index >= len(outcomes):
            return None
        self._fetched_index[pc] = index + 1
        return outcomes[index]

    def on_retire(self, pc: int) -> None:
        if not self.replaying:
            return
        if pc in self._retired_index:
            self._retired_index[pc] += 1
            if self._fetched_index[pc] < self._retired_index[pc]:
                self._fetched_index[pc] = self._retired_index[pc]

    def on_flush(self) -> None:
        """Pipeline flush: wrong-path fetch peeks rewind to retired state."""
        if not self.replaying:
            return
        for pc, retired in self._retired_index.items():
            self._fetched_index[pc] = retired


class LoadValueQueue:
    """Load (address, value) pairs by architectural position.

    Our model is single-core, so the gated store buffer already guarantees
    identical memory inputs on re-execution; the LVQ is used in verification
    mode — re-executed loads are *compared* against it and a mismatch is an
    additional error-detection signal.
    """

    def __init__(self, capacity: int = 16384):
        self.capacity = capacity
        self._entries: dict[int, tuple[int, int]] = {}
        # Ascending, as in BranchOutcomeLog: O(1) eviction and pruning.
        self._order: deque[int] = deque()

    def record(self, position: int, address: int, value: int) -> None:
        if position not in self._entries:
            if len(self._order) >= self.capacity:
                evicted = self._order.popleft()
                self._entries.pop(evicted, None)
            self._order.append(position)
        self._entries[position] = (address, value)

    def entry_at(self, position: int) -> tuple[int, int] | None:
        return self._entries.get(position)

    def prune_before(self, position: int) -> None:
        order = self._order
        while order and order[0] < position:
            self._entries.pop(order.popleft(), None)

    def __len__(self) -> int:
        return len(self._order)
