"""Functional (architectural) simulator.

Executes one instruction per :meth:`ArchSimulator.step`. Instruction words
are compiled once into small closures keyed by word value, so the hot loop
is a memory read, a dictionary lookup, and one call — fast enough for
fault-injection campaigns with thousands of trials.

The simulator stops (rather than unwinding) on ISA exceptions: the paper's
virtual-machine study treats an exception as the terminal symptom of a
trial, and the ReStore pipeline model performs its own rollback handling at
a lower level.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

from repro.arch.exceptions import (
    AlignmentFault,
    ArithmeticTrap,
    IllegalOpcode,
    IsaException,
)
from repro.arch.memory import PageProtection
from repro.arch.state import ArchState
from repro.arch.tracing import ExecutionTrace
from repro.isa import opcodes as op
from repro.isa import semantics
from repro.isa.encoding import IllegalInstructionError, decode_word
from repro.isa.program import STACK_BYTES, STACK_TOP, Program
from repro.isa.registers import REG_GP, REG_SP
from repro.util.bitops import MASK64


class StopReason(Enum):
    """Why execution is (or is not) stopped."""

    RUNNING = "running"
    HALTED = "halted"
    EXCEPTION = "exception"
    LIMIT = "limit"


_Closure = Callable[["ArchSimulator"], None]


class ArchSimulator:
    """One-instruction-per-step functional simulator."""

    def __init__(
        self, state: ArchState, shared_closures: dict[int, _Closure] | None = None
    ):
        self.state = state
        self.retired = 0
        self.stop_reason = StopReason.RUNNING
        self.exception: IsaException | None = None
        # Per-step output for external comparators: ("L"|"S", address, value).
        self.last_memop: tuple[str, int, int] | None = None
        # Per-step destination register written (or -1).
        self.last_dest = -1
        # Compiled closures are pure per-word functions, so campaigns share
        # one cache across the thousands of simulator instances they create.
        self._closures = shared_closures if shared_closures is not None else {}

    def fork(self) -> "ArchSimulator":
        """An independent copy of the current machine (for fault trials)."""
        state = ArchState(
            regs=list(self.state.regs),
            pc=self.state.pc,
            memory=self.state.memory.clone(),
        )
        return ArchSimulator(state, shared_closures=self._closures)

    # ------------------------------------------------------------- running

    @property
    def running(self) -> bool:
        return self.stop_reason is StopReason.RUNNING

    def step(self) -> int:
        """Execute one instruction; returns its PC (or -1 when stopped)."""
        if self.stop_reason is not StopReason.RUNNING:
            return -1
        state = self.state
        pc = state.pc
        self.last_memop = None
        self.last_dest = -1
        try:
            if pc & 3:
                raise AlignmentFault(pc, 4, pc=pc)
            word = state.memory.read(pc, 4)
            closure = self._closures.get(word)
            if closure is None:
                closure = self._compile(word)
                self._closures[word] = closure
            closure(self)
        except IsaException as exc:
            if exc.pc is None:
                exc.pc = pc
            self.exception = exc
            self.stop_reason = StopReason.EXCEPTION
            return pc
        self.retired += 1
        return pc

    def run(self, max_instructions: int) -> StopReason:
        """Run until halt, exception, or the instruction budget is spent."""
        budget = max_instructions
        while budget > 0 and self.stop_reason is StopReason.RUNNING:
            self.step()
            budget -= 1
        if self.stop_reason is StopReason.RUNNING:
            self.stop_reason = StopReason.LIMIT
        return self.stop_reason

    def resume(self) -> None:
        """Clear a LIMIT stop so the simulator can continue."""
        if self.stop_reason is StopReason.LIMIT:
            self.stop_reason = StopReason.RUNNING

    def run_with_trace(self, max_instructions: int) -> ExecutionTrace:
        """Run while recording the golden trace used by fault campaigns."""
        trace = ExecutionTrace()
        pcs = trace.pcs
        memops = trace.memops
        writers = trace.writer_steps
        budget = max_instructions
        while budget > 0 and self.stop_reason is StopReason.RUNNING:
            pc = self.step()
            if pc < 0:
                break
            if self.stop_reason is StopReason.EXCEPTION:
                break
            pcs.append(pc)
            if self.last_memop is not None:
                memops.append(self.last_memop)
            if self.last_dest >= 0:
                trace_step = len(pcs) - 1
                writers.append(trace_step)
            budget -= 1
        if self.stop_reason is StopReason.RUNNING:
            self.stop_reason = StopReason.LIMIT
        trace.final_regs = tuple(self.state.regs)
        trace.final_memory = self.state.memory.clone()
        trace.exception = self.exception
        trace.halted = self.stop_reason is StopReason.HALTED
        return trace

    # ------------------------------------------------------------ compiler

    def _compile(self, word: int) -> _Closure:
        try:
            inst = decode_word(word)
        except IllegalInstructionError:

            def illegal(sim: "ArchSimulator", word: int = word) -> None:
                raise IllegalOpcode(word)

            return illegal

        if inst.is_halt:

            def halt(sim: "ArchSimulator") -> None:
                sim.stop_reason = StopReason.HALTED

            return halt

        if inst.format is op.Format.OPERATE:
            return self._compile_operate(inst)
        if inst.is_lda:
            return self._compile_lda(inst)
        if inst.is_load:
            return self._compile_load(inst)
        if inst.is_store:
            return self._compile_store(inst)
        if inst.is_cond_branch:
            return self._compile_cond_branch(inst)
        if inst.is_uncond_branch:
            return self._compile_uncond_branch(inst)
        if inst.is_jump:
            return self._compile_jump(inst)
        raise AssertionError(f"unhandled instruction {inst.mnemonic}")

    @staticmethod
    def _compile_operate(inst) -> _Closure:
        ra, rb, rc = inst.ra, inst.rb, inst.rc
        literal = inst.literal if inst.is_literal else None
        mnemonic = inst.mnemonic
        if inst.is_cmov:

            def run_cmov(sim: "ArchSimulator") -> None:
                state = sim.state
                regs = state.regs
                a = regs[ra]
                b = literal if literal is not None else regs[rb]
                result = semantics.execute_cmov(inst, a, b, regs[rc])
                if rc != 31:
                    regs[rc] = result.value
                    sim.last_dest = rc
                state.pc = (state.pc + 4) & MASK64

            return run_cmov

        def run_operate(sim: "ArchSimulator") -> None:
            state = sim.state
            regs = state.regs
            a = regs[ra]
            b = literal if literal is not None else regs[rb]
            result = semantics.execute_operate(inst, a, b)
            if result.overflow:
                raise ArithmeticTrap(mnemonic)
            if rc != 31:
                regs[rc] = result.value
                sim.last_dest = rc
            state.pc = (state.pc + 4) & MASK64

        return run_operate

    @staticmethod
    def _compile_lda(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb

        def run_lda(sim: "ArchSimulator") -> None:
            state = sim.state
            regs = state.regs
            value = semantics.lda_value(inst, regs[rb])
            if ra != 31:
                regs[ra] = value
                sim.last_dest = ra
            state.pc = (state.pc + 4) & MASK64

        return run_lda

    @staticmethod
    def _compile_load(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb
        size = inst.access_size

        def run_load(sim: "ArchSimulator") -> None:
            state = sim.state
            regs = state.regs
            address = semantics.effective_address(inst, regs[rb])
            if size > 1 and address % size:
                raise AlignmentFault(address, size)
            raw = state.memory.read(address, size)
            value = semantics.extend_loaded(inst, raw)
            if ra != 31:
                regs[ra] = value
                sim.last_dest = ra
            sim.last_memop = ("L", address, value)
            state.pc = (state.pc + 4) & MASK64

        return run_load

    @staticmethod
    def _compile_store(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb
        size = inst.access_size

        def run_store(sim: "ArchSimulator") -> None:
            state = sim.state
            regs = state.regs
            address = semantics.effective_address(inst, regs[rb])
            if size > 1 and address % size:
                raise AlignmentFault(address, size)
            value = semantics.store_value(inst, regs[ra])
            state.memory.write(address, size, value)
            sim.last_memop = ("S", address, value)
            state.pc = (state.pc + 4) & MASK64

        return run_store

    @staticmethod
    def _compile_cond_branch(inst) -> _Closure:
        ra = inst.ra

        def run_branch(sim: "ArchSimulator") -> None:
            state = sim.state
            if semantics.branch_taken(inst, state.regs[ra]):
                state.pc = inst.branch_target(state.pc)
            else:
                state.pc = (state.pc + 4) & MASK64

        return run_branch

    @staticmethod
    def _compile_uncond_branch(inst) -> _Closure:
        ra = inst.ra

        def run_br(sim: "ArchSimulator") -> None:
            state = sim.state
            target = inst.branch_target(state.pc)
            if ra != 31:
                state.regs[ra] = (state.pc + 4) & MASK64
                sim.last_dest = ra
            state.pc = target

        return run_br

    @staticmethod
    def _compile_jump(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb

        def run_jump(sim: "ArchSimulator") -> None:
            state = sim.state
            regs = state.regs
            target = semantics.jump_target(regs[rb])
            if ra != 31:
                regs[ra] = (state.pc + 4) & MASK64
                sim.last_dest = ra
            state.pc = target

        return run_jump


def load_program(program: Program, stack_bytes: int = STACK_BYTES) -> ArchSimulator:
    """Build a simulator with the program loaded per the ABI conventions.

    Text pages are mapped read-only (a corrupted store targeting the text
    segment raises an access violation, as on a real OS); data and stack are
    read-write. ``SP`` starts at :data:`~repro.isa.program.STACK_TOP`, ``GP``
    at the data base, and the PC at the program entry point.
    """
    state = ArchState()
    memory = state.memory
    text = program.text_segment
    memory.map_region(text.base, max(len(text.data), 1), PageProtection.READ_ONLY)
    memory.load_bytes(text.base, text.data)
    data = program.data_segment
    if data.data:
        memory.map_region(data.base, len(data.data), PageProtection.READ_WRITE)
        memory.load_bytes(data.base, data.data)
    else:
        memory.map_region(data.base, 1, PageProtection.READ_WRITE)
    memory.map_region(STACK_TOP - stack_bytes, stack_bytes, PageProtection.READ_WRITE)
    state.pc = program.entry_point
    state.write_reg(REG_SP, STACK_TOP - 64)
    state.write_reg(REG_GP, program.data_base)
    return state_simulator(state)


def state_simulator(state: ArchState) -> ArchSimulator:
    """Wrap an existing :class:`ArchState` in a simulator."""
    return ArchSimulator(state)
