"""Pipeline state dump helpers."""

from repro.uarch import load_pipeline
from repro.uarch.debug import (
    dump_all,
    dump_rob,
    dump_scheduler,
    dump_state_summary,
    dump_status,
)
from repro.workloads import build_workload


def warm_pipeline():
    pipeline = load_pipeline(build_workload("gcc").program)
    pipeline.run(300)
    return pipeline


class TestDumps:
    def test_status_mentions_cycle_and_state(self):
        pipeline = warm_pipeline()
        text = dump_status(pipeline)
        assert "cycle 300" in text and "running" in text

    def test_status_reports_exception(self):
        from repro.isa import assemble

        program = assemble(
            ".text\nstart: li r1, 0x7000000\n ldq r2, 0(r1)\n halt\n", "x"
        )
        pipeline = load_pipeline(program)
        pipeline.run(10_000)
        assert "access_violation" in dump_status(pipeline)

    def test_rob_lists_in_flight_instructions(self):
        pipeline = warm_pipeline()
        text = dump_rob(pipeline)
        assert "ROB" in text
        if pipeline.rob.count:
            assert "0x" in text

    def test_scheduler_dump(self):
        pipeline = warm_pipeline()
        text = dump_scheduler(pipeline)
        assert "Scheduler" in text

    def test_state_summary_totals(self):
        pipeline = warm_pipeline()
        text = dump_state_summary(pipeline)
        assert "prf" in text and "TOTAL" in text
        assert f"{pipeline.registry.total_bits()}" in text

    def test_dump_all_composes(self):
        pipeline = warm_pipeline()
        text = dump_all(pipeline)
        for fragment in ("cycle", "ROB", "Scheduler", "TOTAL"):
            assert fragment in text

    def test_halted_machine_dumps_cleanly(self):
        pipeline = warm_pipeline()
        pipeline.run(1_000_000)
        assert "halted" in dump_status(pipeline)
        dump_all(pipeline)  # must not raise on an empty machine
