"""Symptom detector framework."""

from repro.restore.symptoms import (
    CacheMissSymptomDetector,
    ExceptionSymptomDetector,
    HighConfidenceMispredictDetector,
    WatchdogSymptomDetector,
    default_detectors,
)


class TestBasicDetectors:
    def test_exception_detector_fires(self):
        detector = ExceptionSymptomDetector()
        assert detector.observe("exception", (1, 0x100))
        assert not detector.observe("hc_mispredict", None)
        assert detector.observed == 1 and detector.triggered == 1

    def test_hc_mispredict_detector(self):
        detector = HighConfidenceMispredictDetector()
        assert detector.observe("hc_mispredict", (0x100, 3))
        assert not detector.observe("mispredict", (0x100, 3))

    def test_watchdog_detector(self):
        detector = WatchdogSymptomDetector()
        assert detector.observe("deadlock", None)

    def test_defaults(self):
        kinds = set()
        for detector in default_detectors():
            kinds.update(detector.kinds)
        assert kinds == {"exception", "hc_mispredict", "deadlock"}


class TestCacheMissDetector:
    def test_threshold_one_fires_immediately(self):
        detector = CacheMissSymptomDetector(threshold=1)
        assert detector.observe("dcache_miss", 100)

    def test_burst_threshold(self):
        detector = CacheMissSymptomDetector(threshold=3, window=50)
        assert not detector.observe("dcache_miss", 100)
        assert not detector.observe("dcache_miss", 110)
        assert detector.observe("dcache_miss", 120)

    def test_window_expiry(self):
        detector = CacheMissSymptomDetector(threshold=2, window=10)
        assert not detector.observe("dcache_miss", 100)
        # Far outside the window: the counter effectively restarts.
        assert not detector.observe("dcache_miss", 500)

    def test_counts_misses_of_selected_kinds_only(self):
        detector = CacheMissSymptomDetector(kinds=("dtlb_miss",), threshold=1)
        assert not detector.observe("dcache_miss", 1)
        assert detector.observe("dtlb_miss", 1)


class TestRollbackReset:
    def test_base_detector_hook_is_a_no_op(self):
        for detector in default_detectors():
            detector.on_rollback(0)  # must exist and not raise

    def test_cache_window_discards_positions_past_rollback(self):
        """Pre-rollback misses sit at *higher* positions than anything the
        re-execution produces; the >= cutoff prune alone would keep them
        forever and inflate every later burst count."""
        detector = CacheMissSymptomDetector(threshold=3, window=50)
        assert not detector.observe("dcache_miss", 480)
        assert not detector.observe("dcache_miss", 490)
        # Rollback rewinds the architectural position to 400.
        detector.on_rollback(400)
        assert detector._recent == []
        # A single post-rollback miss must not complete the stale burst.
        assert not detector.observe("dcache_miss", 410)

    def test_rollback_keeps_observations_at_or_before_restore_point(self):
        detector = CacheMissSymptomDetector(threshold=3, window=100)
        assert not detector.observe("dcache_miss", 395)
        assert not detector.observe("dcache_miss", 450)
        detector.on_rollback(400)
        assert detector._recent == [395]
        # The surviving pre-checkpoint miss still counts toward a burst.
        assert not detector.observe("dcache_miss", 405)
        assert detector.observe("dcache_miss", 410)
