"""DecodedInst classification properties."""

from hypothesis import given, strategies as st

from repro.isa import opcodes as op
from repro.isa.encoding import (
    encode_branch,
    encode_jump,
    encode_memory,
    encode_operate,
    decode_word,
    try_decode_word,
)
from repro.isa.instructions import InstClass
from repro.isa.registers import REG_ZERO


def inst_of(mnemonic, ra=1, rb=2, rc=3):
    spec = op.SPEC_BY_MNEMONIC[mnemonic]
    if spec.format is op.Format.OPERATE:
        return decode_word(encode_operate(spec.opcode, spec.func, ra, rb, rc, False))
    if spec.format is op.Format.MEMORY:
        return decode_word(encode_memory(spec.opcode, ra, rb, 8))
    if spec.format is op.Format.JUMP:
        return decode_word(encode_jump(ra, rb, spec.jump_hint))
    if spec.format is op.Format.BRANCH:
        return decode_word(encode_branch(spec.opcode, ra, 4))
    return decode_word(0)


class TestClassification:
    def test_loads(self):
        for name in ("ldq", "ldl", "ldbu"):
            inst = inst_of(name)
            assert inst.is_load and inst.is_memory and not inst.is_store
            assert inst.inst_class is InstClass.LOAD

    def test_stores(self):
        for name in ("stq", "stl", "stb"):
            inst = inst_of(name)
            assert inst.is_store and inst.is_memory and not inst.is_load
            assert inst.inst_class is InstClass.STORE

    def test_lda_is_alu_not_memory(self):
        inst = inst_of("lda")
        assert inst.is_lda and not inst.is_memory
        assert inst.inst_class is InstClass.ALU

    def test_conditional_branches(self):
        for name in ("beq", "bne", "blt", "bge", "ble", "bgt", "blbs", "blbc"):
            inst = inst_of(name)
            assert inst.is_cond_branch and inst.is_control
            assert inst.inst_class is InstClass.BRANCH

    def test_call_and_return_flags(self):
        assert inst_of("bsr").is_call
        assert inst_of("jsr").is_call
        assert inst_of("ret").is_return
        assert not inst_of("br").is_call
        assert not inst_of("jmp").is_call

    def test_multiply_class(self):
        assert inst_of("mulq").inst_class is InstClass.MULTIPLY
        assert inst_of("addq").inst_class is InstClass.ALU

    def test_halt(self):
        inst = decode_word(0)
        assert inst.is_halt and inst.inst_class is InstClass.HALT


class TestRegisters:
    def test_dest_reg_of_operate(self):
        assert inst_of("addq", rc=5).dest_reg == 5

    def test_dest_r31_is_discarded(self):
        assert inst_of("addq", rc=REG_ZERO).dest_reg is None

    def test_load_dest_is_ra(self):
        assert inst_of("ldq", ra=7).dest_reg == 7

    def test_store_has_no_dest(self):
        assert inst_of("stq").dest_reg is None

    def test_cond_branch_has_no_dest(self):
        assert inst_of("beq").dest_reg is None

    def test_bsr_links(self):
        assert inst_of("bsr", ra=26).dest_reg == 26

    def test_jump_links(self):
        assert inst_of("jsr", ra=26).dest_reg == 26

    def test_sources_of_store(self):
        inst = inst_of("stq", ra=4, rb=5)
        assert set(inst.source_regs) == {4, 5}

    def test_sources_exclude_r31(self):
        inst = inst_of("addq", ra=REG_ZERO, rb=2)
        assert inst.source_regs == (2,)

    def test_cmov_reads_old_dest(self):
        inst = inst_of("cmoveq", ra=1, rb=2, rc=3)
        assert inst.is_cmov
        assert 3 in inst.source_regs

    def test_literal_form_has_single_source(self):
        spec = op.SPEC_BY_MNEMONIC["addq"]
        word = encode_operate(spec.opcode, spec.func, 1, 200, 3, is_literal=True)
        inst = decode_word(word)
        assert inst.source_regs == (1,)

    @given(st.integers(0, (1 << 32) - 1))
    def test_properties_never_crash(self, word):
        inst = try_decode_word(word)
        if inst is None:
            return
        inst.dest_reg
        inst.source_regs
        inst.inst_class
        inst.is_control
        if inst.is_memory:
            assert inst.access_size in (1, 4, 8)
