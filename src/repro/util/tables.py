"""Plain-text rendering of tables and stacked-bar figures.

The benchmark harness prints each reproduced table/figure as text so the
paper-vs-measured comparison can be read straight off the pytest output and
archived in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(value.ljust(width) for value, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_stacked_bars(
    series_labels: Sequence[str],
    bars: Mapping[str, Mapping[str, float]],
    title: str | None = None,
    width: int = 50,
    floor: float = 0.0,
) -> str:
    """Render stacked percentage bars like the paper's Figures 2 and 4-6.

    ``bars`` maps an x-axis label (e.g. checkpoint interval) to a mapping of
    category name -> fraction in [0, 1]. ``floor`` compresses the view to the
    interesting top of the stack (the figures in the paper start their y-axis
    at 88-90% because masking dominates): fractions are drawn relative to the
    span [floor, 1].
    """
    if not 0.0 <= floor < 1.0:
        raise ValueError("floor must lie in [0, 1)")
    glyphs = "#@*+o.xsz%"
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyphs[index % len(glyphs)]}={label}"
        for index, label in enumerate(series_labels)
    )
    lines.append(f"legend: {legend}  (y-span {floor:.0%}..100%)")
    span = 1.0 - floor
    label_width = max((len(str(key)) for key in bars), default=1)
    for key, fractions in bars.items():
        consumed = 0.0
        segments = []
        for index, label in enumerate(series_labels):
            fraction = fractions.get(label, 0.0)
            consumed += fraction
            # The floor truncates the bottom of the stack (the paper's
            # figures start their y-axis at 88-90%), so the first segment
            # loses the invisible part and the rest render at full scale.
            visible = max(0.0, fraction - floor) if index == 0 else fraction
            chars = round(visible / span * width) if span > 0 else 0
            segments.append(glyphs[index % len(glyphs)] * chars)
        bar = "".join(segments)[:width]
        lines.append(f"{str(key).rjust(label_width)} |{bar.ljust(width)}| "
                     f"total={consumed:.1%}")
    return "\n".join(lines)
