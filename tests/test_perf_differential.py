"""Differential tests for the optimised simulator hot paths.

The architectural simulator's pre-decoded closure path and the pipeline's
fast path (pre-decoded instruction records, wakeup waiter index, skipped
retire records) are pure optimisations: they must produce bit-identical
architectural state and identical observable event streams to the
unoptimised reference paths (``predecode=False`` / ``fast=False``), on
every workload kernel, with and without injected faults. These tests are
the contract that lets the perf benchmarks trust the fast paths.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch.simulator import ArchSimulator, load_program
from repro.uarch.pipeline import load_pipeline
from repro.workloads import WORKLOAD_NAMES, build_workload

SEED = 2005
ARCH_BUDGET = 400_000
PIPE_CYCLES = 12_000

REPO_ROOT = Path(__file__).resolve().parents[1]
COMPARE = REPO_ROOT / "benchmarks" / "perf" / "compare.py"


def _arch_pair(name: str) -> tuple[ArchSimulator, ArchSimulator]:
    bundle = build_workload(name, 1, SEED)
    fast = load_program(bundle.program)
    slow_state = load_program(bundle.program).state
    slow = ArchSimulator(slow_state, predecode=False)
    assert fast.predecode and not slow.predecode
    return fast, slow


def _assert_arch_states_identical(fast: ArchSimulator, slow: ArchSimulator):
    assert fast.stop_reason is slow.stop_reason
    assert fast.retired == slow.retired
    assert fast.state.pc == slow.state.pc
    assert fast.state.regs == slow.state.regs
    # Full memory image comparison, page by page.
    assert fast.memory._pages == slow.memory._pages
    if fast.exception is not None or slow.exception is not None:
        assert type(fast.exception) is type(slow.exception)
        assert fast.exception.pc == slow.exception.pc


class TestArchFastPathBitIdentity:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_batch_run_identical_on_kernel(self, name):
        fast, slow = _arch_pair(name)
        fast.run(ARCH_BUDGET)
        slow.run(ARCH_BUDGET)
        _assert_arch_states_identical(fast, slow)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_step_streams_identical_on_kernel(self, name):
        """step() must expose identical per-instruction observables —
        the fault injectors sample last_memop/last_dest between steps."""
        fast, slow = _arch_pair(name)
        for _ in range(20_000):
            pc_fast = fast.step()
            pc_slow = slow.step()
            assert pc_fast == pc_slow
            assert fast.last_memop == slow.last_memop
            assert fast.last_dest == slow.last_dest
            assert fast.state.pc == slow.state.pc
            if pc_fast == -1:
                break
        _assert_arch_states_identical(fast, slow)

    def test_identical_after_injected_encoding_flip(self):
        """Flipping an instruction bit in the text image must invalidate the
        pre-decode cache: both paths re-decode and then agree bit for bit."""
        fast, slow = _arch_pair("gzip")
        for _ in range(200):
            fast.step()
            slow.step()
        # Flip a bit of the instruction about to execute, on both images.
        target_pc = fast.state.pc
        assert target_pc == slow.state.pc
        for sim in (fast, slow):
            word = sim.memory.read(target_pc, 4)
            flipped = (word ^ (1 << 7)).to_bytes(4, "little")
            sim.memory.load_bytes(target_pc, flipped)
        assert fast.memory.read(target_pc, 4) == slow.memory.read(target_pc, 4)
        fast.run(ARCH_BUDGET)
        slow.run(ARCH_BUDGET)
        _assert_arch_states_identical(fast, slow)

    def test_predecode_cache_invalidated_by_image_write(self):
        fast, _ = _arch_pair("gzip")
        fast.run(1_000)
        assert fast._predecoded  # the text segment was cached
        entry = next(iter(fast._predecoded))
        word = fast.memory.read(entry, 4)
        fast.memory.load_bytes(entry, word.to_bytes(4, "little"))
        fast.resume()
        fast.step()
        # The version bump must have dropped every stale closure.
        assert fast._predecode_version == fast.memory.image_version


def _pipeline_pair(name: str):
    bundle = build_workload(name, 1, SEED)
    fast = load_pipeline(bundle.program, collect_retired=True, fast=True)
    slow = load_pipeline(bundle.program, collect_retired=True, fast=False)
    assert fast.fast and not slow.fast
    assert fast.sched.use_wakeup_index and not slow.sched.use_wakeup_index
    return fast, slow


def _assert_pipelines_identical(fast, slow):
    assert fast.cycle_count == slow.cycle_count
    assert fast.retired_count == slow.retired_count
    assert fast.halted == slow.halted
    assert fast.stopped == slow.stopped
    assert fast.exception == slow.exception
    assert fast.retired_log == slow.retired_log
    assert fast.symptoms == slow.symptoms
    assert fast.arch_reg_values() == slow.arch_reg_values()
    assert fast.memory._pages == slow.memory._pages


class TestPipelineFastPathBitIdentity:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_retired_and_symptom_streams_identical_on_kernel(self, name):
        fast, slow = _pipeline_pair(name)
        fast.run(PIPE_CYCLES)
        slow.run(PIPE_CYCLES)
        assert fast.retired_count > 0
        _assert_pipelines_identical(fast, slow)

    def test_identical_under_injected_scheduler_flips(self):
        """The wakeup waiter index must be invalidated by injected flips of
        scheduler valid/source-tag bits — indexed broadcast and the full CAM
        scan must then diverge nowhere."""
        fast, slow = _pipeline_pair("mcf")
        fast.run(2_000)
        slow.run(2_000)
        by_name_fast = {f.name: f for f in fast.registry.fields}
        by_name_slow = {f.name: f for f in slow.registry.fields}
        assert by_name_fast.keys() == by_name_slow.keys()
        for name, bit in (
            ("sched.valid[3]", 0),
            ("sched.src1_preg[5]", 2),
            ("sched.src2_preg[9]", 4),
            ("sched.src3_preg[1]", 1),
            ("prf.ready[40]", 0),
        ):
            by_name_fast[name].flip(bit)
            by_name_slow[name].flip(bit)
        fast.run(4_000)
        slow.run(4_000)
        _assert_pipelines_identical(fast, slow)

    def test_identical_under_injected_rob_count_flip(self):
        """High-bit count corruption exercises the clamping pop path."""
        fast, slow = _pipeline_pair("gap")
        fast.run(1_500)
        slow.run(1_500)
        for pipe in (fast, slow):
            field = next(
                f for f in pipe.registry.fields if f.name == "rob.count[0]"
            )
            field.flip(field.width - 1)
        fast.run(3_000)
        slow.run(3_000)
        _assert_pipelines_identical(fast, slow)


class TestPerfGate:
    def _report(self, tmp_path, name, **metrics):
        path = tmp_path / name
        payload = {
            "schema": "repro-perf/1",
            "metrics": {
                key: {"value": value, "unit": "per_sec"}
                for key, value in metrics.items()
            },
        }
        path.write_text(json.dumps(payload))
        return path

    def _run_compare(self, *args):
        return subprocess.run(
            [sys.executable, str(COMPARE), *map(str, args)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_gate_fails_on_deliberate_slowdown(self, tmp_path):
        baseline = self._report(tmp_path, "base.json", arch_steps_per_sec=1000.0)
        # 30% slower than baseline: well past the 15% threshold.
        current = self._report(tmp_path, "cur.json", arch_steps_per_sec=700.0)
        result = self._run_compare(baseline, current, "--threshold", "0.15")
        assert result.returncode == 2
        assert "REGRESSION" in result.stdout
        assert "PERF GATE FAILED" in result.stderr

    def test_gate_passes_within_threshold(self, tmp_path):
        baseline = self._report(tmp_path, "base.json", arch_steps_per_sec=1000.0)
        current = self._report(tmp_path, "cur.json", arch_steps_per_sec=950.0)
        result = self._run_compare(baseline, current, "--threshold", "0.15")
        assert result.returncode == 0
        assert "perf gate passed" in result.stdout

    def test_gate_enforces_speedup_floor(self, tmp_path):
        baseline = self._report(
            tmp_path, "base.json", arch_steps_per_sec=1000.0, arch_speedup=3.5
        )
        current = self._report(
            tmp_path, "cur.json", arch_steps_per_sec=1100.0, arch_speedup=2.0
        )
        result = self._run_compare(
            baseline, current, "--require", "arch_speedup=3.0"
        )
        assert result.returncode == 2
        assert "below required floor" in result.stderr
