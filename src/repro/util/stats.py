"""Statistical helpers for reporting fault-injection campaign results.

The paper reports proportions (e.g. "59% of injections were masked") with a
confidence interval ("error margin of less than 0.9% at a 95% confidence
level"). We provide the normal-approximation (Wald) interval the paper's
margin numbers correspond to, plus a Wilson interval for small samples, and a
category counter used by every campaign to tally trial outcomes.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterable

# Two-sided z value for a 95% confidence level.
Z_95 = 1.959963984540054


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty iterable."""
    items = list(values)
    if not items:
        raise ValueError("mean of an empty sequence")
    return sum(items) / len(items)


def _check_binomial(successes: int, trials: int) -> None:
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")


def wald_interval(
    successes: int, trials: int, z: float = Z_95
) -> tuple[float, float]:
    """Normal-approximation (Wald) interval: p ± z*sqrt(p(1-p)/n).

    This is the interval the paper's margin numbers correspond to ("error
    margin of less than 0.9% at a 95% confidence level" for ~12-13k trials
    per experiment). Bounds are clipped to [0, 1]; prefer the Wilson
    interval (:func:`proportion_confidence_interval`) for small samples or
    extreme proportions, where Wald degenerates to zero width.
    """
    _check_binomial(successes, trials)
    p_hat = successes / trials
    margin = z * math.sqrt(p_hat * (1 - p_hat) / trials)
    return (max(0.0, p_hat - margin), min(1.0, p_hat + margin))


def wald_margin(successes: int, trials: int, z: float = Z_95) -> float:
    """Half-width of the Wald interval (the paper's "error margin").

    Degenerate at the extremes: 0 or ``trials`` successes give a margin of
    exactly 0.0, so a sequential stopping rule fed Wald margins would stop
    a point after its very first masked trial. Adaptive planners must use
    :func:`wilson_margin` instead, which stays honestly wide there.
    """
    low, high = wald_interval(successes, trials, z)
    return (high - low) / 2


def wilson_margin(successes: int, trials: int, z: float = Z_95) -> float:
    """Half-width of the Wilson interval — the sequential-safe margin.

    Unlike :func:`wald_margin`, this never collapses to zero at 0 or
    ``trials`` successes: the half-width there is z^2 / (2*(n + z^2)), so
    certifying an all-masked injection point to a 0.05 margin takes ~35
    trials rather than one. This is the stopping-rule margin used by the
    adaptive campaign planner (:mod:`repro.planner`).
    """
    low, high = proportion_confidence_interval(successes, trials, z)
    return (high - low) / 2


def proportion_confidence_interval(
    successes: int, trials: int, z: float = Z_95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The Wilson interval behaves well for small samples and extreme
    proportions, unlike the plain Wald interval.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p_hat = successes / trials
    denom = 1 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    spread = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    # At the extremes the Wilson bound equals the extreme exactly; snap the
    # floating-point residue so the interval always contains the estimate.
    low = 0.0 if successes == 0 else max(0.0, center - spread)
    high = 1.0 if successes == trials else min(1.0, center + spread)
    return (low, high)


@dataclass(frozen=True)
class BinomialEstimate:
    """A proportion estimate with its 95% confidence interval."""

    successes: int
    trials: int

    @property
    def proportion(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    @property
    def interval(self) -> tuple[float, float]:
        if self.trials == 0:
            return (0.0, 1.0)
        return proportion_confidence_interval(self.successes, self.trials)

    @property
    def margin(self) -> float:
        """Half-width of the confidence interval."""
        low, high = self.interval
        return (high - low) / 2

    def __str__(self) -> str:
        low, high = self.interval
        return (
            f"{self.proportion:.3f} "
            f"[{low:.3f}, {high:.3f}] ({self.successes}/{self.trials})"
        )


class CategoryCounter:
    """Tallies trial outcomes into named categories.

    The categories are fixed up front so that reports always show every
    category (including zero-count ones) in a stable order, matching the
    stacked-bar figures in the paper.
    """

    def __init__(self, categories: Iterable[str]):
        self.categories = list(categories)
        if len(set(self.categories)) != len(self.categories):
            raise ValueError("duplicate category names")
        self._counts: Counter[str] = Counter()

    def add(self, category: str, count: int = 1) -> None:
        if category not in self.categories:
            raise KeyError(f"unknown category {category!r}")
        self._counts[category] += count

    def count(self, category: str) -> int:
        if category not in self.categories:
            raise KeyError(f"unknown category {category!r}")
        return self._counts[category]

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def proportion(self, category: str) -> float:
        if self.total == 0:
            return 0.0
        return self.count(category) / self.total

    def estimate(self, category: str) -> BinomialEstimate:
        return BinomialEstimate(self.count(category), self.total)

    def as_dict(self) -> dict[str, int]:
        return {name: self._counts[name] for name in self.categories}

    def merged(self, other: "CategoryCounter") -> "CategoryCounter":
        """A new counter holding the sum of this counter and ``other``."""
        if other.categories != self.categories:
            raise ValueError("category sets differ")
        result = CategoryCounter(self.categories)
        for name in self.categories:
            result.add(name, self.count(name) + other.count(name))
        return result
