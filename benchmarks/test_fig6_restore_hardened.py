"""Figure 6: ReStore layered on the parity/ECC-hardened pipeline.

Paper (Section 5.2.2): the baseline fails ~7% of the time; parity/ECC
("low-hanging fruit") alone brings this to ~3%; layering ReStore on top
reaches ~1% — a 7x MTBF improvement — because parity/ECC protect the SRAM
structures while ReStore's symptoms cover the latches. The *other*
category grows ("latent faults in the register file or alias table that
are covered by ECC and will not cause data corruption").
"""

from repro.restore.hardened import ProtectionMap, protection_overhead_bits
from repro.faults.uarch_campaign import FIGURE46_INTERVALS
from repro.util.tables import format_table

from .conftest import emit, run_shared_uarch_campaign


def test_fig6_hardened_pipeline(benchmark):
    result = benchmark.pedantic(run_shared_uarch_campaign, rounds=1, iterations=1)
    pmap = ProtectionMap()

    baseline = result.baseline_failure_estimate().proportion
    restore = result.failure_estimate(100, require_confident_cfv=True).proportion
    lhf = result.failure_estimate(
        0, require_confident_cfv=True, protection=pmap
    ).proportion  # interval 0: no symptom coverage, protection only
    combined = result.failure_estimate(
        100, require_confident_cfv=True, protection=pmap
    ).proportion

    trials = len(result.trials)

    def factor(value):
        if value:
            return f"{baseline / value:.1f}x"
        # Zero residual failures at this sample size: report the rule-of-
        # three lower bound instead of infinity.
        return f">{baseline / (3 / trials):.0f}x (0/{trials})"

    headline = format_table(
        ["configuration", "paper failure rate", "measured", "MTBF factor"],
        [
            ["baseline", "~7%", f"{baseline:.1%}", "1.0x"],
            ["ReStore @100", "~3.5%", f"{restore:.1%}", factor(restore)],
            ["lhf (parity/ECC)", "~3%", f"{lhf:.1%}", factor(lhf)],
            ["lhf + ReStore @100", "~1%", f"{combined:.1%}", factor(combined)],
        ],
        title="Figure 6 / Section 5.2.2 headline comparison (paper: 7x combined)",
    )

    from repro.uarch import load_pipeline
    from repro.workloads import build_workload

    registry = load_pipeline(build_workload("gcc").program).registry
    overhead = protection_overhead_bits(registry, pmap)
    overhead_note = (
        f"protection overhead: {overhead:,} bits "
        f"({overhead / registry.total_bits():.1%} of {registry.total_bits():,}; "
        "paper: ~7% additional state)"
    )

    emit(
        "fig6_restore_hardened",
        "\n\n".join(
            [
                result.table(
                    FIGURE46_INTERVALS,
                    require_confident_cfv=True,
                    protection=pmap,
                    title="Figure 6: ReStore coverage vs interval (hardened pipeline)",
                ),
                headline,
                overhead_note,
            ]
        ),
    )

    # The mechanisms must compose: each layer reduces the failure rate.
    assert restore < baseline
    assert lhf < baseline
    assert combined <= min(restore, lhf)
    combined_factor = baseline / combined if combined else float("inf")
    assert combined_factor > 2.5
    # The paper's observed "larger other category" under ECC.
    other_hardened = result.counter(100, protection=pmap).proportion("other")
    other_plain = result.counter(100).proportion("other")
    assert other_hardened >= other_plain
