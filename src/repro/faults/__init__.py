"""Statistical fault injection: models, campaigns, and classification.

Two campaign drivers mirror the paper's two studies:

- :mod:`repro.faults.arch_campaign` — the "virtual machine" study (Figure 2):
  a single bit flip in the result of a randomly chosen instruction, with the
  outcome classified by the first symptom it propagates to.
- :mod:`repro.faults.uarch_campaign` — the microarchitectural study
  (Figures 4-6): a single bit flip in a randomly chosen pipeline state
  element, with the outcome classified against a golden pipeline run.
"""

from repro.faults.classify import (
    ARCH_CATEGORIES,
    ARCH_CATEGORY_DESCRIPTIONS,
    UARCH_CATEGORIES,
    UARCH_CATEGORY_DESCRIPTIONS,
    ArchTrialResult,
    UarchTrialResult,
    classify_arch_trial,
    classify_uarch_trial,
)
from repro.faults.models import ArchResultBitFlip, StateBitFlip
from repro.faults.arch_campaign import (
    ArchCampaignConfig,
    ArchCampaignResult,
    run_arch_campaign,
)
from repro.faults.uarch_campaign import (
    UarchCampaignConfig,
    UarchCampaignResult,
    run_uarch_campaign,
)

__all__ = [
    "ARCH_CATEGORIES",
    "ARCH_CATEGORY_DESCRIPTIONS",
    "ArchCampaignConfig",
    "ArchCampaignResult",
    "ArchResultBitFlip",
    "ArchTrialResult",
    "StateBitFlip",
    "UARCH_CATEGORIES",
    "UarchCampaignConfig",
    "UarchCampaignResult",
    "run_uarch_campaign",
    "UARCH_CATEGORY_DESCRIPTIONS",
    "UarchTrialResult",
    "classify_arch_trial",
    "classify_uarch_trial",
    "run_arch_campaign",
]
