"""Command-line interface."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_plain(self, capsys):
        assert main(["run", "gap"]) == 0
        out = capsys.readouterr().out
        assert "halted" in out and "correct" in out

    def test_run_with_restore(self, capsys):
        assert main(["run", "gap", "--restore", "--interval", "50"]) == 0
        out = capsys.readouterr().out
        assert "rollbacks" in out and "checkpoints_created" in out

    def test_run_delayed_policy(self, capsys):
        assert main(["run", "vortex", "--restore", "--policy", "delayed"]) == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "spice"])


class TestInject:
    def test_inject_reports_outcome(self, capsys):
        assert main(["inject", "gcc", "--seed", "3", "--cycle", "600"]) == 0
        out = capsys.readouterr().out
        assert "flipped bit" in out and "outcome:" in out

    def test_inject_with_restore(self, capsys):
        assert main(
            ["inject", "gcc", "--seed", "3", "--cycle", "600", "--restore"]
        ) == 0
        assert "rollbacks" in capsys.readouterr().out

    def test_inject_latches_only(self, capsys):
        assert main(
            ["inject", "mcf", "--seed", "1", "--latches-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "ram state" not in out


class TestCampaign:
    def test_arch_campaign(self, capsys):
        assert main(
            ["campaign", "arch", "--trials", "6", "--workloads", "gcc"]
        ) == 0
        out = capsys.readouterr().out
        assert "masked" in out and "coverage" in out

    def test_uarch_campaign(self, capsys):
        assert main(
            ["campaign", "uarch", "--trials", "6", "--workloads", "gcc"]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoint interval" in out

    def test_bad_workload_list(self):
        with pytest.raises(SystemExit):
            main(["campaign", "arch", "--workloads", "gcc,bogus"])

    def test_journal_and_status_round_trip(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        assert main(
            ["campaign", "arch", "--trials", "6", "--workloads", "gcc",
             "--journal", journal]
        ) == 0
        out = capsys.readouterr().out
        assert "Harness outcomes" in out and "harness-crash" in out
        assert main(["campaign", "status", journal]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "gcc" in out

    def test_resume_skips_journaled_trials(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        main(["campaign", "arch", "--trials", "6", "--workloads", "gcc",
              "--journal", journal])
        capsys.readouterr()
        assert main(
            ["campaign", "arch", "--trials", "6", "--workloads", "gcc",
             "--journal", journal, "--resume"]
        ) == 0
        assert "trials executed: 0" in capsys.readouterr().out

    def test_parallel_campaign(self, capsys):
        assert main(
            ["campaign", "arch", "--trials", "6",
             "--workloads", "gcc,gzip", "--jobs", "2"]
        ) == 0
        assert "jobs: 2" in capsys.readouterr().out


class TestCampaignHardening:
    def test_zero_trials_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="invalid campaign configuration"):
            main(["campaign", "arch", "--trials", "0", "--workloads", "gcc"])

    def test_negative_seed_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="seed"):
            main(["campaign", "uarch", "--trials", "6", "--seed", "-3",
                  "--workloads", "gcc"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit, match="--jobs"):
            main(["campaign", "arch", "--trials", "6", "--jobs", "0",
                  "--workloads", "gcc"])

    def test_bad_trial_timeout_rejected(self):
        with pytest.raises(SystemExit, match="--trial-timeout"):
            main(["campaign", "arch", "--trials", "6", "--trial-timeout",
                  "0", "--workloads", "gcc"])

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit, match="--resume requires --journal"):
            main(["campaign", "arch", "--trials", "6", "--resume",
                  "--workloads", "gcc"])

    def test_existing_journal_requires_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        main(["campaign", "arch", "--trials", "6", "--workloads", "gcc",
              "--journal", journal])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--resume"):
            main(["campaign", "arch", "--trials", "6", "--workloads", "gcc",
                  "--journal", journal])

    def test_status_requires_path(self):
        with pytest.raises(SystemExit, match="journal path"):
            main(["campaign", "status"])

    def test_status_missing_journal(self, tmp_path):
        with pytest.raises(SystemExit, match="no such journal"):
            main(["campaign", "status", str(tmp_path / "nope.jsonl")])

    def test_positional_journal_only_for_status(self, tmp_path):
        with pytest.raises(SystemExit, match="--journal"):
            main(["campaign", "arch", str(tmp_path / "run.jsonl")])

    def test_inject_zero_cycle_rejected(self):
        with pytest.raises(SystemExit, match="--cycle"):
            main(["inject", "gcc", "--cycle", "0"])

    def test_inject_negative_seed_rejected(self):
        with pytest.raises(SystemExit, match="--seed"):
            main(["inject", "gcc", "--seed", "-1"])

    def test_inject_max_cycles_must_exceed_cycle(self):
        with pytest.raises(SystemExit, match="--max-cycles"):
            main(["inject", "gcc", "--cycle", "500", "--max-cycles", "400"])


class TestFitAndPerf:
    def test_fit_table(self, capsys):
        assert main(["fit", "--baseline", "0.08", "--combined", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "8.0x" in out

    def test_perf_points(self, capsys):
        assert main(["perf", "--intervals", "100", "--workloads", "gap"]) == 0
        out = capsys.readouterr().out
        assert "imm" in out and "delayed" in out


class TestWorkloadsListing:
    def test_lists_all_seven(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("bzip2", "gap", "gcc", "gzip", "mcf", "parser", "vortex"):
            assert name in out


class TestTelemetryCli:
    def test_run_with_trace_writes_valid_jsonl(self, tmp_path, capsys):
        trace = str(tmp_path / "run.trace.jsonl")
        assert main(
            ["run", "gcc", "--restore", "--interval", "50", "--trace", trace]
        ) == 0
        assert "trace:" in capsys.readouterr().out
        assert main(["trace", "validate", trace]) == 0
        assert "all schema-valid" in capsys.readouterr().out

    def test_campaign_trace_and_report(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        trace = str(tmp_path / "run.trace.jsonl")
        assert main(
            ["campaign", "uarch", "--trials", "8", "--workloads", "gcc",
             "--journal", journal, "--trace", trace]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "validate", trace]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", journal]) == 0
        assert "telemetry: aggregate" in capsys.readouterr().out
        assert main(["campaign", "report", journal]) == 0
        out = capsys.readouterr().out
        assert "Section 3.3 symptom metrics" in out
        assert "rollback distance" in out

    def test_report_requires_journal_path(self):
        with pytest.raises(SystemExit, match="needs a journal path"):
            main(["campaign", "report"])

    def test_report_missing_journal(self, tmp_path):
        with pytest.raises(SystemExit, match="no such journal"):
            main(["campaign", "report", str(tmp_path / "nope.jsonl")])

    def test_trace_validate_rejects_bad_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "unheard_of", "cycle": 0, "position": 0}\n')
        with pytest.raises(SystemExit, match="invalid trace"):
            main(["trace", "validate", str(bad)])

    def test_trace_validate_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["trace", "validate", str(tmp_path / "nope.jsonl")])


class TestServiceCli:
    """The service-facing commands: submit, jobs, worker, serve."""

    def test_submit_wait_and_inspect(self, tmp_path, capsys):
        from tests.test_service_api import running_service

        with running_service(tmp_path / "svc", workers=1) as (service, _):
            assert main([
                "submit", "arch", "--url", service.address,
                "--trials", "6", "--workloads", "gcc", "--seed", "7",
                "--shards", "2", "--wait", "--timeout", "120",
            ]) == 0
            out = capsys.readouterr().out
            assert "done" in out and "job-000001" in out

            assert main(["jobs", "--url", service.address]) == 0
            out = capsys.readouterr().out
            assert "job-000001" in out and "done" in out

            assert main([
                "jobs", "job-000001", "--url", service.address, "--json"
            ]) == 0
            import json

            view = json.loads(capsys.readouterr().out)
            assert view["state"] == "done" and view["trials"] > 0

            assert main([
                "jobs", "job-000001", "--url", service.address,
                "--results", "--limit", "3",
            ]) == 0
            lines = capsys.readouterr().out.strip().splitlines()
            assert len(lines) == 3
            assert json.loads(lines[0])["kind"] == "trial"

    def test_worker_cli_drains_service(self, tmp_path, capsys):
        from tests.test_service_api import running_service

        with running_service(tmp_path / "svc", workers=0) as (service, _):
            assert main([
                "submit", "arch", "--url", service.address,
                "--trials", "6", "--workloads", "gcc",
            ]) == 0
            capsys.readouterr()
            assert main([
                "worker", "--url", service.address, "--name", "cli-worker",
                "--exit-when-idle", "--poll", "0.05",
            ]) == 0
            assert "1 unit(s) completed" in capsys.readouterr().out
            assert main([
                "jobs", "job-000001", "--url", service.address
            ]) == 0
            assert "done" in capsys.readouterr().out

    def test_jobs_cancel(self, tmp_path, capsys):
        from tests.test_service_api import running_service

        with running_service(tmp_path / "svc", workers=0) as (service, _):
            assert main([
                "submit", "arch", "--url", service.address,
                "--trials", "6", "--workloads", "gcc",
            ]) == 0
            capsys.readouterr()
            assert main([
                "jobs", "job-000001", "--url", service.address, "--cancel"
            ]) == 0
            assert "cancelled" in capsys.readouterr().out

    def test_submit_validation(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(["submit", "arch", "--shards", "0"])
        with pytest.raises(SystemExit):
            main(["submit", "arch", "--workloads", "spice"])

    def test_submit_unreachable_service(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main([
                "submit", "arch", "--url", "http://127.0.0.1:1",
                "--trials", "6", "--workloads", "gcc",
            ])

    def test_serve_validation(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--workers", "-1"])
        with pytest.raises(SystemExit, match="--lease-ttl"):
            main(["serve", "--lease-ttl", "0"])
        with pytest.raises(SystemExit, match="--max-attempts"):
            main(["serve", "--max-attempts", "0"])


class TestMemhierFlags:
    def test_uarch_campaign_with_memhier_flags(self, tmp_path, capsys):
        journal = str(tmp_path / "mh.jsonl")
        assert main([
            "campaign", "uarch", "--trials", "6", "--workloads", "gcc",
            "--memhier-targets", "--detectors", "miss_spike,spurious_memop",
            "--journal", journal,
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", journal]) == 0
        out = capsys.readouterr().out
        assert "miss_spike" in out and "spurious_memop" in out

    def test_arch_campaign_rejects_memhier_flags(self):
        with pytest.raises(SystemExit, match="uarch-only"):
            main(["campaign", "arch", "--trials", "6", "--memhier-targets"])
        with pytest.raises(SystemExit, match="uarch-only"):
            main(["campaign", "arch", "--trials", "6",
                  "--detectors", "miss_spike"])

    def test_unknown_detector_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="unknown detectors"):
            main(["campaign", "uarch", "--trials", "6",
                  "--detectors", "bogus"])

    def test_submit_options_mirror_campaign_config(self):
        """The service payload built by ``repro submit`` must reconstruct
        into the exact config (and digest) a serial CLI run uses."""
        from repro.cli import _campaign_config_options
        from repro.faults import UarchCampaignConfig
        from repro.service import build_config
        from repro.util.journal import config_to_dict, stable_digest

        options = _campaign_config_options(
            "uarch", 6, ("gcc",), 7,
            memhier_targets=True, detectors=("miss_spike",),
        )
        built = build_config("uarch", options)
        local = UarchCampaignConfig(
            trials_per_workload=6,
            injection_points=min(6, max(4, 6 // 3)),
            workloads=("gcc",), seed=7,
            memhier_targets=True, detectors=("miss_spike",),
        )
        assert stable_digest(config_to_dict(built)) == stable_digest(
            config_to_dict(local)
        )

    def test_submit_options_omit_defaults(self):
        from repro.cli import _campaign_config_options

        options = _campaign_config_options("uarch", 6, ("gcc",), 7)
        assert "memhier_targets" not in options
        assert "detectors" not in options
