"""Functional (architectural) simulator.

Executes one instruction per :meth:`ArchSimulator.step`. The hot path is a
two-level cache:

- a *pre-decoded instruction cache* keyed by PC: for text (read-only)
  pages, fetch + decode + operand-extraction collapse to one dictionary
  lookup per dynamic instruction. Entries are validated against the
  memory's ``image_version``, so anything that can rewrite text — the
  loader, or a fault campaign flipping an instruction encoding bit in
  place — invalidates the cache and the next step re-fetches and
  re-decodes honestly;
- a *compiled-closure cache* keyed by word value: each distinct encoding
  compiles once into a closure with the semantics handler, register
  numbers, displacements, and masks already bound (see
  :mod:`repro.isa.semantics`'s dispatch tables), so nothing is re-derived
  per execution. Closures are pure per-word functions and are shared
  across the thousands of forked simulators a campaign creates.

Closures take ``(sim, pc)`` and return the next PC, so the run loop keeps
the PC in a local and writes ``state.pc`` back only on exit; ``step()``
writes it back every call, so external observers (fault injectors,
trace comparators) always see a consistent machine between steps.

Instructions fetched from writable pages (reachable only via corrupted
control flow) always take the fetch-and-decode path, because a later store
could rewrite them.

Constructing with ``predecode=False`` selects the unoptimised reference
interpreter — fetch, decode, and dispatch through the generic semantics
entry points on every step — kept as the differential-testing anchor for
the fast path (see ``tests/test_perf_differential.py``).

The simulator stops (rather than unwinding) on ISA exceptions: the paper's
virtual-machine study treats an exception as the terminal symptom of a
trial, and the ReStore pipeline model performs its own rollback handling at
a lower level.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

from repro.arch.exceptions import (
    AlignmentFault,
    ArithmeticTrap,
    IllegalOpcode,
    IsaException,
)
from repro.arch.memory import PageProtection, SparseMemory
from repro.arch.state import ArchState
from repro.arch.tracing import ArchSnapshot, ExecutionTrace
from repro.isa import opcodes as op
from repro.isa import semantics
from repro.isa.encoding import IllegalInstructionError, decode_word
from repro.isa.program import STACK_BYTES, STACK_TOP, Program
from repro.isa.registers import REG_GP, REG_SP
from repro.util.bitops import MASK64


class StopReason(Enum):
    """Why execution is (or is not) stopped."""

    RUNNING = "running"
    HALTED = "halted"
    EXCEPTION = "exception"
    LIMIT = "limit"


class _HaltSignal(Exception):
    """Raised by the compiled HALT closure; never escapes this module."""


_Closure = Callable[["ArchSimulator", int], int]


class ArchSimulator:
    """One-instruction-per-step functional simulator."""

    def __init__(
        self,
        state: ArchState,
        shared_closures: dict[int, _Closure] | None = None,
        predecode: bool = True,
    ):
        self.state = state
        # The register list and memory image have stable identity for the
        # lifetime of a simulator (state restores slice-assign in place),
        # so closures reach them through one attribute load instead of two.
        self.regs = state.regs
        self.memory = state.memory
        self.retired = 0
        self.stop_reason = StopReason.RUNNING
        self.exception: IsaException | None = None
        # Per-step outputs for external comparators, valid after step():
        # the memory access ("L"|"S", address, value) and destination
        # register (or -1). Batch run() loops do not maintain them.
        self.last_memop: tuple[str, int, int] | None = None
        self.last_dest = -1
        self.predecode = predecode
        # Compiled closures are pure per-word functions, so campaigns share
        # one cache across the thousands of simulator instances they create.
        self._closures = shared_closures if shared_closures is not None else {}
        # PC-keyed pre-decoded instruction cache over text pages, valid
        # while the memory image's version is unchanged. Forks share it
        # copy-on-write (``_predecode_shared``): entries are pure per-word
        # closures over read-only text, so sharers with the same image
        # version see the same bytes; any text rewrite bumps the version,
        # and the rewriter detaches before touching the dict.
        self._predecoded: dict[int, _Closure] = {}
        self._predecode_shared = False
        self._predecode_version = state.memory.image_version

    def fork(self, cow: bool = False) -> "ArchSimulator":
        """An independent copy of the current machine (for fault trials).

        With ``cow=True`` the memory image is a copy-on-write clone
        (:meth:`~repro.arch.memory.SparseMemory.clone_cow`): pages stay
        shared until either machine writes them, so forking is O(pages)
        instead of O(bytes). Architecturally both forms are identical.
        """
        memory = self.state.memory
        state = ArchState(
            regs=list(self.state.regs),
            pc=self.state.pc,
            memory=memory.clone_cow() if cow else memory.clone(),
        )
        copy = ArchSimulator(
            state, shared_closures=self._closures, predecode=self.predecode
        )
        # The clone's text bytes and version match ours, so the PC cache is
        # shared rather than copied; both sides mark it shared so whichever
        # machine first sees a text rewrite detaches instead of clearing the
        # dict out from under the other (see _invalidate_predecoded).
        copy._predecoded = self._predecoded
        copy._predecode_version = self._predecode_version
        if self.predecode:
            self._predecode_shared = True
            copy._predecode_shared = True
        return copy

    def _invalidate_predecoded(self, image_version: int) -> None:
        """Drop stale PC-cache entries after a text image change.

        A fork-shared cache is abandoned, not cleared: the other sharers'
        text is unchanged (their image version still matches), so their
        entries remain valid and must not be destroyed — and entries this
        machine would compile from its rewritten text must not leak to
        them.
        """
        if self._predecode_shared:
            self._predecoded = {}
            self._predecode_shared = False
        else:
            self._predecoded.clear()
        self._predecode_version = image_version

    # ------------------------------------------------------------- running

    @property
    def running(self) -> bool:
        return self.stop_reason is StopReason.RUNNING

    def step(self) -> int:
        """Execute one instruction; returns its PC (or -1 when stopped)."""
        if self.stop_reason is not StopReason.RUNNING:
            return -1
        state = self.state
        pc = state.pc
        self.last_memop = None
        self.last_dest = -1
        try:
            if self.predecode:
                memory = self.memory
                if self._predecode_version != memory.image_version:
                    self._invalidate_predecoded(memory.image_version)
                closure = self._predecoded.get(pc)
                if closure is None:
                    closure = self._fetch_closure(pc, memory)
                state.pc = closure(self, pc)
            else:
                self._step_reference(pc)
        except _HaltSignal:
            self.stop_reason = StopReason.HALTED
        except IsaException as exc:
            if exc.pc is None:
                exc.pc = pc
            self.exception = exc
            self.stop_reason = StopReason.EXCEPTION
            return pc
        self.retired += 1
        return pc

    def _fetch_closure(self, pc: int, memory: SparseMemory) -> _Closure:
        """Fetch + compile on a PC-cache miss; cache text-page fetches.

        Only instructions on read-only pages enter the PC cache: ordinary
        stores cannot rewrite them, so a cached entry can only go stale
        through the loader/injection route, which bumps ``image_version``.
        Fetches from writable pages (reachable only via corrupted control
        flow) are re-read every step.
        """
        if pc & 3:
            raise AlignmentFault(pc, 4, pc=pc)
        word = memory.read(pc, 4)
        closure = self._closures.get(word)
        if closure is None:
            closure = self._compile(word)
            self._closures[word] = closure
        if memory.protection_at(pc) is PageProtection.READ_ONLY:
            self._predecoded[pc] = closure
        return closure

    def run(self, max_instructions: int) -> StopReason:
        """Run until halt, exception, or the instruction budget is spent."""
        if self.stop_reason is not StopReason.RUNNING:
            return self.stop_reason
        if not self.predecode:
            budget = max_instructions
            step = self.step
            while budget > 0 and self.stop_reason is StopReason.RUNNING:
                step()
                budget -= 1
            if self.stop_reason is StopReason.RUNNING:
                self.stop_reason = StopReason.LIMIT
            return self.stop_reason
        # Fast path: the step loop inlined with the PC in a local. Nothing
        # a closure executes can remap or reload text, so the image-version
        # check hoists out of the loop; HALT arrives as an exception so the
        # loop condition is just the budget.
        state = self.state
        memory = self.memory
        if self._predecode_version != memory.image_version:
            self._invalidate_predecoded(memory.image_version)
        lookup = self._predecoded.get
        fetch = self._fetch_closure
        pc = state.pc
        budget = max_instructions
        retired = 0
        try:
            while budget > 0:
                closure = lookup(pc)
                if closure is None:
                    closure = fetch(pc, memory)
                pc = closure(self, pc)
                retired += 1
                budget -= 1
        except _HaltSignal:
            retired += 1
            self.stop_reason = StopReason.HALTED
        except IsaException as exc:
            if exc.pc is None:
                exc.pc = pc
            self.exception = exc
            self.stop_reason = StopReason.EXCEPTION
        state.pc = pc
        self.retired += retired
        if self.stop_reason is StopReason.RUNNING:
            self.stop_reason = StopReason.LIMIT
        return self.stop_reason

    def resume(self) -> None:
        """Clear a LIMIT stop so the simulator can continue."""
        if self.stop_reason is StopReason.LIMIT:
            self.stop_reason = StopReason.RUNNING

    def run_with_trace(
        self, max_instructions: int, snapshot_every: int = 0
    ) -> ExecutionTrace:
        """Run while recording the golden trace used by fault campaigns.

        With ``snapshot_every`` > 0, a full architectural checkpoint
        (:class:`~repro.arch.tracing.ArchSnapshot`) is captured every that
        many retired instructions, letting later prefix walks fast-forward
        to an injection point instead of re-executing from reset.
        """
        trace = ExecutionTrace()
        pcs = trace.pcs
        memops = trace.memops
        writers = trace.writer_steps
        memop_counts = trace.memop_counts
        budget = max_instructions
        step = self.step
        while budget > 0 and self.stop_reason is StopReason.RUNNING:
            pc = step()
            if pc < 0:
                break
            if self.stop_reason is StopReason.EXCEPTION:
                break
            pcs.append(pc)
            if self.last_memop is not None:
                memops.append(self.last_memop)
            memop_counts.append(len(memops))
            if self.last_dest >= 0:
                trace_step = len(pcs) - 1
                writers.append(trace_step)
            budget -= 1
            if (
                snapshot_every
                and self.stop_reason is StopReason.RUNNING
                and self.retired % snapshot_every == 0
            ):
                trace.snapshots.append(
                    ArchSnapshot(
                        retired=self.retired,
                        pc=self.state.pc,
                        regs=tuple(self.state.regs),
                        memory=self.state.memory.clone(),
                    )
                )
        if self.stop_reason is StopReason.RUNNING:
            self.stop_reason = StopReason.LIMIT
        trace.final_regs = tuple(self.state.regs)
        trace.final_memory = self.state.memory.clone()
        trace.exception = self.exception
        trace.halted = self.stop_reason is StopReason.HALTED
        return trace

    # -------------------------------------------------- reference interpreter

    def _step_reference(self, pc: int) -> None:
        """Unoptimised fetch/decode/dispatch: the differential anchor.

        No caches, no bound handlers — every step re-reads the word,
        re-decodes it, and dispatches through the generic entry points of
        :mod:`repro.isa.semantics`. The fast path must stay bit-identical
        to this.
        """
        state = self.state
        if pc & 3:
            raise AlignmentFault(pc, 4, pc=pc)
        word = state.memory.read(pc, 4)
        try:
            inst = decode_word(word)
        except IllegalInstructionError:
            raise IllegalOpcode(word) from None
        if inst.is_halt:
            self.stop_reason = StopReason.HALTED
            return
        regs = state.regs
        if inst.format is op.Format.OPERATE:
            a = regs[inst.ra]
            b = semantics.operand_b(inst, regs[inst.rb])
            if inst.is_cmov:
                result = semantics.execute_cmov(inst, a, b, regs[inst.rc])
            else:
                result = semantics.execute_operate(inst, a, b)
                if result.overflow:
                    raise ArithmeticTrap(inst.mnemonic)
            if inst.rc != 31:
                regs[inst.rc] = result.value
                self.last_dest = inst.rc
            state.pc = (pc + 4) & MASK64
        elif inst.is_lda:
            value = semantics.lda_value(inst, regs[inst.rb])
            if inst.ra != 31:
                regs[inst.ra] = value
                self.last_dest = inst.ra
            state.pc = (pc + 4) & MASK64
        elif inst.is_load:
            address = semantics.effective_address(inst, regs[inst.rb])
            size = inst.access_size
            if size > 1 and address % size:
                raise AlignmentFault(address, size)
            raw = state.memory.read(address, size)
            value = semantics.extend_loaded(inst, raw)
            if inst.ra != 31:
                regs[inst.ra] = value
                self.last_dest = inst.ra
            self.last_memop = ("L", address, value)
            state.pc = (pc + 4) & MASK64
        elif inst.is_store:
            address = semantics.effective_address(inst, regs[inst.rb])
            size = inst.access_size
            if size > 1 and address % size:
                raise AlignmentFault(address, size)
            value = semantics.store_value(inst, regs[inst.ra])
            state.memory.write(address, size, value)
            self.last_memop = ("S", address, value)
            state.pc = (pc + 4) & MASK64
        elif inst.is_cond_branch:
            if semantics.branch_taken(inst, regs[inst.ra]):
                state.pc = inst.branch_target(pc)
            else:
                state.pc = (pc + 4) & MASK64
        elif inst.is_uncond_branch:
            target = inst.branch_target(pc)
            if inst.ra != 31:
                regs[inst.ra] = (pc + 4) & MASK64
                self.last_dest = inst.ra
            state.pc = target
        elif inst.is_jump:
            target = semantics.jump_target(regs[inst.rb])
            if inst.ra != 31:
                regs[inst.ra] = (pc + 4) & MASK64
                self.last_dest = inst.ra
            state.pc = target
        else:  # pragma: no cover - decode covers every format
            raise AssertionError(f"unhandled instruction {inst.mnemonic}")

    # ------------------------------------------------------------ compiler

    def _compile(self, word: int) -> _Closure:
        try:
            inst = decode_word(word)
        except IllegalInstructionError:

            def illegal(sim: "ArchSimulator", pc: int, word: int = word) -> int:
                raise IllegalOpcode(word)

            return illegal

        if inst.is_halt:

            def halt(sim: "ArchSimulator", pc: int) -> int:
                raise _HaltSignal

            return halt

        if inst.format is op.Format.OPERATE:
            return self._compile_operate(inst)
        if inst.is_lda:
            return self._compile_lda(inst)
        if inst.is_load:
            return self._compile_load(inst)
        if inst.is_store:
            return self._compile_store(inst)
        if inst.is_cond_branch:
            return self._compile_cond_branch(inst)
        if inst.is_uncond_branch:
            return self._compile_uncond_branch(inst)
        if inst.is_jump:
            return self._compile_jump(inst)
        raise AssertionError(f"unhandled instruction {inst.mnemonic}")

    @staticmethod
    def _compile_operate(inst) -> _Closure:
        ra, rb, rc = inst.ra, inst.rb, inst.rc
        literal = inst.literal if inst.is_literal else None
        mnemonic = inst.mnemonic
        if inst.is_cmov:
            predicate = semantics.cmov_predicate(inst)

            if rc == 31:  # result discarded; nothing architectural happens

                def run_cmov_dead(sim: "ArchSimulator", pc: int) -> int:
                    return (pc + 4) & MASK64

                return run_cmov_dead

            def run_cmov(sim: "ArchSimulator", pc: int) -> int:
                regs = sim.regs
                if predicate(regs[ra]):
                    regs[rc] = literal if literal is not None else regs[rb]
                sim.last_dest = rc
                return (pc + 4) & MASK64

            return run_cmov

        handler = semantics.value_handler(inst)
        if handler is not None:
            if rc == 31:

                def run_dead(sim: "ArchSimulator", pc: int) -> int:
                    return (pc + 4) & MASK64

                return run_dead

            if literal is not None:

                def run_literal(sim: "ArchSimulator", pc: int) -> int:
                    regs = sim.regs
                    regs[rc] = handler(regs[ra], literal)
                    sim.last_dest = rc
                    return (pc + 4) & MASK64

                return run_literal

            def run_register(sim: "ArchSimulator", pc: int) -> int:
                regs = sim.regs
                regs[rc] = handler(regs[ra], regs[rb])
                sim.last_dest = rc
                return (pc + 4) & MASK64

            return run_register

        trapping = semantics.trapping_handler(inst)
        if trapping is None:  # pragma: no cover - decode admits no others
            raise AssertionError(f"no handler for {mnemonic}")

        def run_trapping(sim: "ArchSimulator", pc: int) -> int:
            regs = sim.regs
            b = literal if literal is not None else regs[rb]
            value, overflow = trapping(regs[ra], b)
            if overflow:
                raise ArithmeticTrap(mnemonic)
            if rc != 31:
                regs[rc] = value
                sim.last_dest = rc
            return (pc + 4) & MASK64

        return run_trapping

    @staticmethod
    def _compile_lda(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb
        offset = semantics.lda_displacement(inst)

        if ra == 31:

            def run_lda_dead(sim: "ArchSimulator", pc: int) -> int:
                return (pc + 4) & MASK64

            return run_lda_dead

        def run_lda(sim: "ArchSimulator", pc: int) -> int:
            regs = sim.regs
            regs[ra] = (regs[rb] + offset) & MASK64
            sim.last_dest = ra
            return (pc + 4) & MASK64

        return run_lda

    @staticmethod
    def _compile_load(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb
        size = inst.access_size
        # Access sizes are powers of two, so the alignment check is a mask.
        unaligned = size - 1
        offset = semantics.signed_displacement(inst)
        extend = semantics.load_extender(inst)

        if inst.opcode == op.OP_LDQ:
            # The quad extender is the identity (memory reads are already
            # unsigned 64-bit), so skip the call on the commonest load.

            def run_load_quad(sim: "ArchSimulator", pc: int) -> int:
                regs = sim.regs
                address = (regs[rb] + offset) & MASK64
                if address & 7:
                    raise AlignmentFault(address, 8)
                value = sim.memory.read(address, 8)
                if ra != 31:
                    regs[ra] = value
                    sim.last_dest = ra
                sim.last_memop = ("L", address, value)
                return (pc + 4) & MASK64

            return run_load_quad

        def run_load(sim: "ArchSimulator", pc: int) -> int:
            regs = sim.regs
            address = (regs[rb] + offset) & MASK64
            if address & unaligned:
                raise AlignmentFault(address, size)
            value = extend(sim.memory.read(address, size))
            if ra != 31:
                regs[ra] = value
                sim.last_dest = ra
            sim.last_memop = ("L", address, value)
            return (pc + 4) & MASK64

        return run_load

    @staticmethod
    def _compile_store(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb
        size = inst.access_size
        unaligned = size - 1
        offset = semantics.signed_displacement(inst)
        mask = semantics.store_mask(inst)

        def run_store(sim: "ArchSimulator", pc: int) -> int:
            regs = sim.regs
            address = (regs[rb] + offset) & MASK64
            if address & unaligned:
                raise AlignmentFault(address, size)
            value = regs[ra] & mask
            sim.memory.write(address, size, value)
            sim.last_memop = ("S", address, value)
            return (pc + 4) & MASK64

        return run_store

    @staticmethod
    def _compile_cond_branch(inst) -> _Closure:
        ra = inst.ra
        predicate = semantics.branch_predicate(inst)
        # branch_target(pc) == (pc + delta) & MASK64 with delta fixed at
        # decode; fold the displacement arithmetic out of the hot path.
        delta = 4 + 4 * semantics.signed_displacement(inst)

        def run_branch(sim: "ArchSimulator", pc: int) -> int:
            if predicate(sim.regs[ra]):
                return (pc + delta) & MASK64
            return (pc + 4) & MASK64

        return run_branch

    @staticmethod
    def _compile_uncond_branch(inst) -> _Closure:
        ra = inst.ra
        delta = 4 + 4 * semantics.signed_displacement(inst)

        if ra == 31:

            def run_br_dead(sim: "ArchSimulator", pc: int) -> int:
                return (pc + delta) & MASK64

            return run_br_dead

        def run_br(sim: "ArchSimulator", pc: int) -> int:
            sim.regs[ra] = (pc + 4) & MASK64
            sim.last_dest = ra
            return (pc + delta) & MASK64

        return run_br

    @staticmethod
    def _compile_jump(inst) -> _Closure:
        ra, rb = inst.ra, inst.rb

        if ra == 31:

            def run_jump_dead(sim: "ArchSimulator", pc: int) -> int:
                return sim.regs[rb] & ~0x3 & MASK64

            return run_jump_dead

        def run_jump(sim: "ArchSimulator", pc: int) -> int:
            regs = sim.regs
            target = regs[rb] & ~0x3 & MASK64
            regs[ra] = (pc + 4) & MASK64
            sim.last_dest = ra
            return target

        return run_jump


def load_program(program: Program, stack_bytes: int = STACK_BYTES) -> ArchSimulator:
    """Build a simulator with the program loaded per the ABI conventions.

    Text pages are mapped read-only (a corrupted store targeting the text
    segment raises an access violation, as on a real OS); data and stack are
    read-write. ``SP`` starts at :data:`~repro.isa.program.STACK_TOP`, ``GP``
    at the data base, and the PC at the program entry point.
    """
    state = ArchState()
    memory = state.memory
    text = program.text_segment
    memory.map_region(text.base, max(len(text.data), 1), PageProtection.READ_ONLY)
    memory.load_bytes(text.base, text.data)
    data = program.data_segment
    if data.data:
        memory.map_region(data.base, len(data.data), PageProtection.READ_WRITE)
        memory.load_bytes(data.base, data.data)
    else:
        memory.map_region(data.base, 1, PageProtection.READ_WRITE)
    memory.map_region(STACK_TOP - stack_bytes, stack_bytes, PageProtection.READ_WRITE)
    state.pc = program.entry_point
    state.write_reg(REG_SP, STACK_TOP - 64)
    state.write_reg(REG_GP, program.data_base)
    return state_simulator(state)


def state_simulator(state: ArchState) -> ArchSimulator:
    """Wrap an existing :class:`ArchState` in a simulator."""
    return ArchSimulator(state)
