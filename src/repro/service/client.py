"""A stdlib HTTP client for the campaign service.

Wraps :mod:`urllib.request` with JSON encoding/decoding and turns the
API's error envelopes into :class:`ServiceClientError`. Used by the
``repro submit`` / ``repro jobs`` / ``repro worker`` CLI commands and by
the end-to-end tests; anything else can speak the same trivially-curlable
protocol directly.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from urllib.parse import urlencode


class ServiceClientError(Exception):
    """The service rejected a request (or could not be reached)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """A thin JSON-over-HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: dict | None = None,
        query: dict | None = None,
    ) -> dict:
        url = f"{self.base_url}{path}"
        if query:
            url += "?" + urlencode(
                {k: v for k, v in query.items() if v is not None}
            )
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body or str(exc)
            raise ServiceClientError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"cannot reach campaign service at {self.base_url}: "
                f"{exc.reason}"
            ) from None

    # ----------------------------------------------------- client side

    def health(self) -> dict:
        return self._request("GET", "/api/health")

    def submit(self, payload: dict) -> dict:
        return self._request("POST", "/api/jobs", payload)

    def jobs(self, offset: int = 0, limit: int = 50) -> dict:
        return self._request(
            "GET", "/api/jobs", query={"offset": offset, "limit": limit}
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/api/jobs/{job_id}/cancel", {})

    def results(
        self, job_id: str, *, offset: int = 0, limit: int = 100,
        status: str | None = None, workload: str | None = None,
    ) -> dict:
        return self._request(
            "GET", f"/api/jobs/{job_id}/results",
            query={"offset": offset, "limit": limit, "status": status,
                   "workload": workload},
        )

    def metrics(self, job_id: str) -> dict:
        return self._request("GET", f"/api/jobs/{job_id}/metrics")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.2
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        from repro.service.store import JOB_TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in JOB_TERMINAL_STATES:
                return view
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(state: {view['state']})"
                )
            time.sleep(poll)

    # ----------------------------------------------------- worker side

    def lease(self, worker: str) -> dict | None:
        lease = self._request("POST", "/api/lease", {"worker": worker})
        return lease if lease.get("unit") else None

    def heartbeat(self, job_id: str, unit_id: str, worker: str) -> bool:
        return bool(self._request(
            "POST", f"/api/jobs/{job_id}/units/{unit_id}/heartbeat",
            {"worker": worker},
        ).get("ok"))

    def complete(
        self, job_id: str, unit_id: str, worker: str, result: dict
    ) -> bool:
        return bool(self._request(
            "POST", f"/api/jobs/{job_id}/units/{unit_id}/complete",
            {"worker": worker, "result": result},
        ).get("accepted"))

    def fail(self, job_id: str, unit_id: str, worker: str, error: str) -> bool:
        return bool(self._request(
            "POST", f"/api/jobs/{job_id}/units/{unit_id}/fail",
            {"worker": worker, "error": error},
        ).get("accepted"))
