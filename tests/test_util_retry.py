"""Retry policies and circuit breakers: determinism, budgets, states."""

import pytest

from repro.util.retry import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_delays_are_deterministic_per_key(self):
        """The chaos-replay contract: the same (key, attempt) always
        waits the same time; different keys de-synchronize."""
        policy = RetryPolicy(attempts=5)
        first = list(policy.delays("lease"))
        assert first == list(policy.delays("lease"))
        assert first != list(policy.delays("complete"))

    def test_backoff_grows_and_caps_at_max_delay(self):
        policy = RetryPolicy(
            attempts=8, base_delay=0.1, multiplier=2.0, max_delay=0.4,
            jitter=0.0,
        )
        assert list(policy.delays()) == [
            0.1, 0.2, 0.4, 0.4, 0.4, 0.4, 0.4,
        ]

    def test_jitter_only_shortens_delays(self):
        jittered = RetryPolicy(attempts=6, jitter=1.0)
        plain = RetryPolicy(attempts=6, jitter=0.0)
        for with_j, without_j in zip(jittered.delays("k"), plain.delays("k")):
            assert 0.0 <= with_j <= without_j

    def test_attempts_one_means_never_retry(self):
        policy = RetryPolicy(attempts=1)
        assert list(policy.delays()) == []
        assert policy.total_budget() == 0.0

    def test_total_budget_sums_the_schedule(self):
        policy = RetryPolicy(attempts=4, jitter=0.0)
        assert policy.total_budget() == pytest.approx(sum(policy.delays()))

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="retry must be >= 1"):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(3, 5.0, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        assert breaker.trips == 0

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(3, 5.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # streak broken: no trip

    def test_trips_open_and_fast_fails_until_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, 5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.fast_failures == 1
        clock.advance(4.9)
        assert not breaker.allow()  # still cooling down

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everything else sheds
        assert breaker.state == BREAKER_HALF_OPEN

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # a fresh probe after the new cooldown

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(0, 5.0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(1, 0.0)
