"""Statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    BinomialEstimate,
    CategoryCounter,
    mean,
    proportion_confidence_interval,
    wald_interval,
    wald_margin,
    wilson_margin,
)


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestConfidenceInterval:
    def test_half(self):
        low, high = proportion_confidence_interval(50, 100)
        assert low < 0.5 < high
        assert high - low < 0.25

    def test_extremes_stay_in_unit_interval(self):
        low, high = proportion_confidence_interval(0, 10)
        assert low == 0.0 and high < 0.5
        low, high = proportion_confidence_interval(10, 10)
        assert high == 1.0 and low > 0.5

    def test_narrows_with_sample_size(self):
        small = proportion_confidence_interval(5, 10)
        large = proportion_confidence_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_validates(self):
        with pytest.raises(ValueError):
            proportion_confidence_interval(1, 0)
        with pytest.raises(ValueError):
            proportion_confidence_interval(5, 3)

    @given(st.integers(1, 500), st.integers(0, 500))
    def test_contains_point_estimate(self, trials, successes):
        successes = min(successes, trials)
        low, high = proportion_confidence_interval(successes, trials)
        assert low <= successes / trials <= high

    def test_paper_scale_margin(self):
        # Paper: ~1000 trials per benchmark, 7 benchmarks, "error margin of
        # less than 0.9% at a 95% confidence level" near the extremes.
        estimate = BinomialEstimate(6 * 7000 // 100, 7000)
        assert estimate.margin < 0.009


class TestBinomialEstimate:
    def test_proportion(self):
        assert BinomialEstimate(3, 10).proportion == 0.3

    def test_zero_trials(self):
        estimate = BinomialEstimate(0, 0)
        assert estimate.proportion == 0.0
        assert estimate.interval == (0.0, 1.0)

    def test_str_is_informative(self):
        text = str(BinomialEstimate(1, 4))
        assert "0.250" in text and "1/4" in text


class TestCategoryCounter:
    def test_counts_and_proportions(self):
        counter = CategoryCounter(["a", "b"])
        counter.add("a")
        counter.add("a")
        counter.add("b")
        assert counter.count("a") == 2
        assert counter.total == 3
        assert counter.proportion("b") == pytest.approx(1 / 3)

    def test_unknown_category_rejected(self):
        counter = CategoryCounter(["a"])
        with pytest.raises(KeyError):
            counter.add("zzz")
        with pytest.raises(KeyError):
            counter.count("zzz")

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            CategoryCounter(["a", "a"])

    def test_as_dict_preserves_order_and_zeroes(self):
        counter = CategoryCounter(["x", "y"])
        counter.add("y")
        assert counter.as_dict() == {"x": 0, "y": 1}

    def test_merged(self):
        a = CategoryCounter(["x", "y"])
        b = CategoryCounter(["x", "y"])
        a.add("x")
        b.add("x")
        b.add("y")
        merged = a.merged(b)
        assert merged.as_dict() == {"x": 2, "y": 1}

    def test_merged_requires_same_categories(self):
        a = CategoryCounter(["x"])
        b = CategoryCounter(["y"])
        with pytest.raises(ValueError):
            a.merged(b)

    def test_estimate(self):
        counter = CategoryCounter(["x", "y"])
        for _ in range(30):
            counter.add("x")
        for _ in range(70):
            counter.add("y")
        estimate = counter.estimate("x")
        assert estimate.proportion == pytest.approx(0.3)


class TestWaldInterval:
    def test_symmetric_margin_formula(self):
        low, high = wald_interval(50, 100)
        # z * sqrt(p(1-p)/n) with p=0.5, n=100 -> 0.098.
        assert high - 0.5 == pytest.approx(0.5 - low)
        assert (high - low) / 2 == pytest.approx(0.0980, abs=1e-4)

    def test_reproduces_paper_error_margin_claim(self):
        """~12,800 trials per experiment: "error margin of less than 0.9%
        at a 95% confidence level". The margin is maximal at p=0.5."""
        margin = wald_margin(6400, 12800)
        assert margin < 0.009
        assert margin == pytest.approx(0.00866, abs=1e-4)
        # Any other proportion gives a smaller margin at the same n.
        assert wald_margin(1280, 12800) < margin

    def test_bounds_clipped_to_unit_interval(self):
        low, high = wald_interval(1, 1000)
        assert 0.0 <= low <= high <= 1.0
        low, high = wald_interval(999, 1000)
        assert 0.0 <= low <= high <= 1.0

    def test_degenerate_extremes_collapse(self):
        # The known Wald pathology the docstring warns about.
        assert wald_interval(0, 50) == (0.0, 0.0)
        assert wald_interval(50, 50) == (1.0, 1.0)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            wald_interval(1, 0)
        with pytest.raises(ValueError):
            wald_interval(5, 4)
        with pytest.raises(ValueError):
            wald_margin(-1, 10)

    def test_wilson_and_wald_agree_for_large_balanced_samples(self):
        wilson = proportion_confidence_interval(5000, 10000)
        wald = wald_interval(5000, 10000)
        assert wilson[0] == pytest.approx(wald[0], abs=1e-4)
        assert wilson[1] == pytest.approx(wald[1], abs=1e-4)


class TestWilsonMargin:
    """The stopping-rule margin for the adaptive planner must never be
    degenerate at the extremes — the exact failure mode that makes Wald
    margins unusable for sequential early stopping."""

    def test_wald_collapses_at_extremes_wilson_does_not(self):
        for trials in (1, 5, 20, 100):
            assert wald_margin(0, trials) == 0.0
            assert wald_margin(trials, trials) == 0.0
            assert wilson_margin(0, trials) > 0.0
            assert wilson_margin(trials, trials) > 0.0

    def test_is_half_the_wilson_interval_width(self):
        for successes, trials in [(0, 10), (3, 10), (10, 10), (77, 240)]:
            low, high = proportion_confidence_interval(successes, trials)
            assert wilson_margin(successes, trials) == pytest.approx(
                (high - low) / 2
            )

    def test_all_masked_point_needs_real_evidence(self):
        # Certifying 0/n to a 0.05 margin takes ~35 trials — a Wald rule
        # would have stopped after one.
        assert wilson_margin(0, 1) > 0.05
        assert wilson_margin(0, 34) > 0.05
        assert wilson_margin(0, 40) < 0.05

    @given(st.integers(1, 500))
    def test_shrinks_monotonically_for_all_masked_points(self, trials):
        assert wilson_margin(0, trials + 1) < wilson_margin(0, trials)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            wilson_margin(1, 0)
        with pytest.raises(ValueError):
            wilson_margin(5, 4)
