#!/usr/bin/env python
"""Design-space exploration: checkpoint interval and rollback policy.

For a processor architect evaluating ReStore: sweeps the checkpoint
interval, measures the performance cost of false-positive symptoms on the
real pipeline (Figure 7), converts the residual failure rates into FIT and
MTBF at a chosen design size (Figure 8), and prints the trade-off table
that would drive the design decision.

Run: ``python examples/design_space.py``
"""

from repro.faults import UarchCampaignConfig, run_uarch_campaign
from repro.perfmodel import measure_restore_performance
from repro.reliability import fit_rate, mtbf_years
from repro.restore.controller import RollbackPolicy
from repro.util.tables import format_table

WORKLOADS = ("gcc", "gzip", "bzip2")
INTERVALS = (50, 100, 500)
DESIGN_BITS = 400_000  # a hypothetical 8x-scaled execution core


def main() -> None:
    print("measuring symptom coverage (one campaign, reused per interval)...")
    campaign = run_uarch_campaign(
        UarchCampaignConfig(
            trials_per_workload=60,
            injection_points=20,
            window_cycles=1800,
            workloads=WORKLOADS,
        )
    )
    print("measuring false-positive performance cost...")
    points = measure_restore_performance(
        intervals=INTERVALS,
        policies=(RollbackPolicy.IMMEDIATE,),
        workloads=WORKLOADS,
    )

    baseline_failure = campaign.baseline_failure_estimate().proportion
    rows = []
    baseline_fit = fit_rate(DESIGN_BITS, baseline_failure)
    rows.append(
        ["baseline", "-", "1.000", f"{baseline_failure:.1%}",
         f"{baseline_fit:.1f}", f"{mtbf_years(baseline_fit):,.0f}"]
    )
    for interval in INTERVALS:
        point = next(p for p in points if p.interval == interval)
        failure = campaign.failure_estimate(
            interval, require_confident_cfv=True
        ).proportion
        fit = fit_rate(DESIGN_BITS, failure)
        rows.append(
            [
                f"ReStore @{interval}",
                str(interval),
                f"{point.speedup:.3f}",
                f"{failure:.1%}",
                f"{fit:.1f}",
                f"{mtbf_years(fit):,.0f}",
            ]
        )
    print()
    print(
        format_table(
            ["configuration", "interval", "rel. perf", "failure rate",
             f"FIT @{DESIGN_BITS:,}b", "MTBF (years)"],
            rows,
            title="ReStore design space: coverage vs performance",
        )
    )
    print("\nReading the table: longer intervals buy more symptom coverage "
          "(lower failure rate) at a growing performance cost — the paper "
          "picks 100 instructions as the sweet spot.")


if __name__ == "__main__":
    main()
