"""Figure 7: performance impact of false-positive symptoms.

Paper (Section 5.2.3): "the performance hit is minor for shorter
checkpointing intervals. A checkpointing interval of 100 instructions
yields a performance hit of approximately 6%. The delayed configuration
slightly underperforms the imm configuration at smaller intervals, but
begins to gain an advantage at 500 instruction intervals."
"""

from repro.perfmodel import AnalyticInputs, AnalyticPerfModel
from repro.perfmodel.timing import FIGURE7_INTERVALS, measure_restore_performance
from repro.restore.controller import RollbackPolicy, TuningConfig
from repro.uarch import load_pipeline
from repro.util.tables import format_table
from repro.workloads import build_workload

from .conftest import emit, perf_workloads


def test_fig7_speedup_vs_interval(benchmark):
    workloads = perf_workloads()

    def run():
        base = measure_restore_performance(
            intervals=FIGURE7_INTERVALS, workloads=workloads
        )
        # Section 3.2.3's dynamic tuning damps false-positive bursts; run
        # the immediate policy again with the breaker enabled.
        tuned = measure_restore_performance(
            intervals=FIGURE7_INTERVALS,
            policies=(RollbackPolicy.IMMEDIATE,),
            workloads=workloads,
            tuning=TuningConfig(enabled=True, window=2_000, threshold=2,
                                cooldown=5_000),
        )
        return base, tuned

    points, tuned_points = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for interval in FIGURE7_INTERVALS:
        row = [str(interval)]
        for policy in ("imm", "delayed"):
            point = next(
                p for p in points if p.interval == interval and p.policy == policy
            )
            row.append(f"{point.speedup:.3f} (rb={point.rollbacks})")
        tuned = next(p for p in tuned_points if p.interval == interval)
        row.append(f"{tuned.speedup:.3f} (rb={tuned.rollbacks})")
        rows.append(row)
    simulated = format_table(
        ["interval", "imm", "delayed", "imm + dynamic tuning"],
        rows,
        title=(
            "Figure 7 (simulated): relative performance vs checkpoint interval"
            f" [workloads: {', '.join(workloads)}]"
        ),
    )

    # Analytic model fed by the measured error-free symptom rate.
    total_retired = 0
    total_hc = 0
    for name in workloads:
        pipeline = load_pipeline(build_workload(name).program)
        pipeline.run(2_000_000)
        total_retired += pipeline.retired_count
        total_hc += pipeline.hc_mispredict_count
    rate = total_hc / total_retired
    model = AnalyticPerfModel(AnalyticInputs(hc_mispredict_rate=rate))
    analytic = format_table(
        ["interval", "imm", "delayed"],
        [
            [str(i), f"{model.speedup(i, 'imm'):.3f}",
             f"{model.speedup(i, 'delayed'):.3f}"]
            for i in FIGURE7_INTERVALS
        ],
        title=(
            f"Figure 7 (analytic): measured HC-mispredict rate {rate:.2e}/insn"
        ),
    )
    emit("fig7_performance", simulated + "\n\n" + analytic)

    by_key = {(p.interval, p.policy): p.speedup for p in points}
    # Short intervals cost little.
    assert by_key[(100, "imm")] > 0.80, "paper reports ~6% at interval 100"
    # The imm policy degrades with the interval.
    assert by_key[(1000, "imm")] < by_key[(50, "imm")]
    # Delayed overtakes imm by 500-1000 (the paper's crossover).
    assert by_key[(1000, "delayed")] > by_key[(1000, "imm")]
    # The analytic model agrees with simulation within a loose band at 100.
    assert abs(model.speedup(100, "imm") - by_key[(100, "imm")]) < 0.15
    # Dynamic tuning must damp rollback storms at long intervals.
    tuned_1000 = next(p for p in tuned_points if p.interval == 1000)
    imm_1000 = next(
        p for p in points if p.interval == 1000 and p.policy == "imm"
    )
    assert tuned_1000.rollbacks <= imm_1000.rollbacks
