"""Memory dependence predictor.

The paper's processor model includes memory dependence prediction (two
predictor blocks in its Figure 3). We model a simple collision-history
table: loads whose PC has recently caused an ordering violation are made to
wait for all older store addresses; others issue speculatively past
unresolved stores. A violation (an older store later writes to an address
a speculative load already read) squashes from the load, like a branch
misprediction.

Predictor state is excluded from fault injection, as with all predictors.
"""

from __future__ import annotations


class MemoryDependencePredictor:
    """Per-load-PC saturating collision counters."""

    def __init__(self, entries: int):
        self.entries = entries
        self.table = [0] * entries  # 2-bit counters; >=2 means "wait"

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def should_wait(self, pc: int) -> bool:
        """Should this load wait for all older store addresses?"""
        return self.table[self._index(pc)] >= 2

    def record_violation(self, pc: int) -> None:
        self.table[self._index(pc)] = 3

    def record_safe(self, pc: int) -> None:
        index = self._index(pc)
        if self.table[index] > 0:
            self.table[index] -= 1
