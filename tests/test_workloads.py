"""Workload kernels: correctness, determinism, and realism properties."""

import pytest

from repro.arch import StopReason, load_program
from repro.isa.encoding import try_decode_word
from repro.workloads import WORKLOAD_NAMES, build_all_workloads, build_workload


class TestRegistry:
    def test_names_match_paper(self):
        assert WORKLOAD_NAMES == (
            "bzip2", "gap", "gcc", "gzip", "mcf", "parser", "vortex"
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_workload("spice")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_workload("gcc", scale=0)

    def test_build_all(self):
        bundles = build_all_workloads()
        assert [bundle.name for bundle in bundles] == list(WORKLOAD_NAMES)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestCorrectness:
    def test_halts_and_matches_expected_outputs(self, name, bundles):
        bundle = bundles[name]
        simulator = load_program(bundle.program)
        reason = simulator.run(400_000)
        assert reason is StopReason.HALTED, simulator.exception
        assert bundle.check(simulator.state.memory) == []

    def test_deterministic_generation(self, name):
        first = build_workload(name, seed=99)
        second = build_workload(name, seed=99)
        assert first.program.text_words == second.program.text_words
        assert first.program.data_bytes == second.program.data_bytes
        assert first.expected_outputs == second.expected_outputs

    def test_seed_changes_program_or_data(self, name):
        first = build_workload(name, seed=1)
        second = build_workload(name, seed=2)
        assert (
            first.program.data_bytes != second.program.data_bytes
            or first.expected_outputs != second.expected_outputs
        )

    def test_scale_increases_dynamic_length(self, name, arch_traces):
        small_length = arch_traces[name].length
        big = build_workload(name, scale=2)
        simulator = load_program(big.program)
        simulator.run(2_000_000)
        assert simulator.retired > small_length
        assert simulator.stop_reason is StopReason.HALTED
        assert big.check(simulator.state.memory) == []


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestInstructionMix:
    """The fault studies depend on a realistic instruction mix."""

    def _mix(self, bundle, trace):
        memory = None
        loads = stores = branches = 0
        from repro.arch import load_program as _lp

        sim = _lp(bundle.program)
        word_kinds = {}
        for pc in trace.pcs:
            kind = word_kinds.get(pc)
            if kind is None:
                inst = try_decode_word(sim.state.memory.read(pc, 4))
                if inst is None:
                    kind = "other"
                elif inst.is_load:
                    kind = "load"
                elif inst.is_store:
                    kind = "store"
                elif inst.is_control:
                    kind = "branch"
                else:
                    kind = "alu"
                word_kinds[pc] = kind
            if kind == "load":
                loads += 1
            elif kind == "store":
                stores += 1
            elif kind == "branch":
                branches += 1
        return loads, stores, branches, trace.length

    def test_has_memory_and_control_flow(self, name, bundles, arch_traces):
        loads, stores, branches, total = self._mix(bundles[name], arch_traces[name])
        # gap's modexp kernel is multiply-dominated, so its floor is lower.
        assert loads / total > 0.025, "too few loads to be SPECint-like"
        assert stores / total > 0.005
        assert branches / total > 0.05, "too few branches to be SPECint-like"

    def test_checked_outputs_nonzero(self, name, bundles):
        # A kernel whose expected output is 0 would mask output corruption.
        bundle = bundles[name]
        assert any(value != 0 for value in bundle.expected_outputs.values())
