"""ASCII table and stacked-bar rendering."""

import pytest

from repro.util.tables import format_table, render_stacked_bars


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "long-name" in text and "22" in text
        # All data rows have identical width.
        assert len(set(len(line) for line in lines)) <= 2

    def test_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestStackedBars:
    def test_renders_all_keys(self):
        text = render_stacked_bars(
            ["m", "e"],
            {"25": {"m": 0.5, "e": 0.25}, "100": {"m": 0.6, "e": 0.2}},
        )
        assert "25" in text and "100" in text
        assert "legend" in text

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            render_stacked_bars(["m"], {}, floor=1.5)

    def test_floor_truncates_bottom_segment(self):
        def glyphs(text):
            return text.splitlines()[-1].count("#")

        full = render_stacked_bars(["m"], {"x": {"m": 0.9}}, width=40, floor=0.0)
        zoomed = render_stacked_bars(["m"], {"x": {"m": 0.9}}, width=40, floor=0.8)
        # Unzoomed: 0.9 of the width; zoomed: (0.9-0.8)/0.2 = half the width.
        assert glyphs(full) == 36
        assert glyphs(zoomed) == 20

    def test_floor_keeps_upper_segments_full_scale(self):
        text = render_stacked_bars(
            ["m", "e"], {"x": {"m": 0.9, "e": 0.1}}, width=40, floor=0.8
        )
        bar_line = text.splitlines()[-1]
        # The top segment spans 0.1/0.2 of the width.
        assert bar_line.count("@") == 20
