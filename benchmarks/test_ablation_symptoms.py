"""Ablations on the symptom set (Sections 3.3 and 5.2.1).

1. **Confidence predictor choice**: JRS (conservative) vs a perfect
   confidence oracle. Paper: "a perfect confidence predictor would yield
   nearly twice the error coverage."
2. **Cache/TLB-miss symptoms**: evaluated on the paper's third metric —
   "the frequency of the symptom in the absence of an error". Paper:
   data-cache misses "may not be sufficiently rare enough in the absence
   of transient faults and may cause undue false positives."
"""

from repro.uarch import load_pipeline
from repro.util.tables import format_table
from repro.workloads import WORKLOAD_NAMES, build_workload

from .conftest import emit, run_shared_uarch_campaign


def test_confidence_predictor_ablation(benchmark):
    result = benchmark.pedantic(run_shared_uarch_campaign, rounds=1, iterations=1)
    jrs = result.counter(100, require_confident_cfv=True).proportion("cfv")
    perfect = result.counter(100).proportion("cfv")
    text = format_table(
        ["confidence estimator", "cfv coverage @100 (share of trials)"],
        [
            ["JRS (resetting counters)", f"{jrs:.2%}"],
            ["perfect oracle", f"{perfect:.2%}"],
            ["none (exceptions-only ReStore)", "0.00%"],
        ],
        title="Section 5.2.1 ablation: confidence predictor choice",
    )
    emit("ablation_confidence", text)
    assert jrs <= perfect


def test_cache_miss_symptom_false_positive_rates(benchmark):
    def measure():
        rows = []
        totals = {"hc_mispredict": 0, "dcache_miss": 0, "dtlb_miss": 0,
                  "exception": 0, "retired": 0}
        for name in WORKLOAD_NAMES:
            pipeline = load_pipeline(
                build_workload(name).program, record_cache_symptoms=True
            )
            pipeline.run(2_000_000)
            counts = {"hc_mispredict": 0, "dcache_miss": 0, "dtlb_miss": 0,
                      "exception": 0}
            for event in pipeline.symptoms:
                if event.kind in counts:
                    counts[event.kind] += 1
            for key, value in counts.items():
                totals[key] += value
            totals["retired"] += pipeline.retired_count
            rows.append(
                [name]
                + [f"{counts[k] / pipeline.retired_count:.2e}"
                   for k in ("exception", "hc_mispredict", "dcache_miss",
                             "dtlb_miss")]
            )
        rows.append(
            ["ALL"]
            + [f"{totals[k] / totals['retired']:.2e}"
               for k in ("exception", "hc_mispredict", "dcache_miss",
                         "dtlb_miss")]
        )
        return rows, totals

    rows, totals = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["workload", "exception/insn", "hc_mispredict/insn",
         "dcache_miss/insn", "dtlb_miss/insn"],
        rows,
        title=(
            "Section 3.3 metric 3: error-free symptom frequency "
            "(why cache misses make poor rollback triggers)"
        ),
    )
    emit("ablation_cache_symptom", text)

    # Error-free runs raise no exceptions, few HC mispredicts, many misses.
    assert totals["exception"] == 0
    hc_rate = totals["hc_mispredict"] / totals["retired"]
    dcache_rate = totals["dcache_miss"] / totals["retired"]
    # Our kernels' footprints are cache-friendly, so the gap is smaller
    # than on full SPEC runs, but the ordering must hold clearly.
    assert dcache_rate > 3 * hc_rate, (
        "data-cache misses must be clearly more frequent than HC mispredicts "
        "in error-free execution (the paper's false-positive argument)"
    )
