"""The lockstep batch-trial scheduler and its serial twin.

The contract under test is absolute: the lockstep scheduler must produce
*byte-identical* journals to the serial per-trial path — every
``ArchTrialResult`` field bit for bit, on every kernel, under sharding,
resume, caching, snapshot fast-forward, and a golden run that hits the
instruction limit. Speed may differ; science may not.
"""

import pytest

from repro.arch import load_program
from repro.cache import ArchGoldenArtifact, GoldenArtifactCache
from repro.campaign import run_campaign
from repro.campaign.outcomes import CampaignWorkloadWarning, trial_key
from repro.faults import ArchCampaignConfig, arch_campaign
from repro.faults.lockstep import LockstepStats, run_lockstep_trials
from repro.isa import assemble
from repro.isa import opcodes as op
from repro.isa.encoding import HALT_WORD, encode_memory, try_decode_word
from repro.service import CampaignScheduler, JobSpec, ResultStore, execute_unit
from repro.util.rng import DeterministicRng
from repro.workloads import WORKLOAD_NAMES, WorkloadBundle, build_workload

SMALL = dict(trials_per_workload=18, injection_points=6)


def entries(outcome):
    return [o.to_entry() for o in outcome.outcomes]


def read_lines(path):
    with open(path, "rb") as handle:
        return handle.read().splitlines()


def campaign_points(config, workload, trace):
    """The injection points run_workload_trials will select — the same
    pure (seed, label) derivation the campaign performs."""
    wrng = (
        DeterministicRng(config.seed).child("arch-campaign").child(workload)
    )
    count = min(config.injection_points, len(trace.writer_steps))
    return sorted(wrng.child("points").sample(trace.writer_steps, count))


# ----------------------------------------------------- serial-twin identity


class TestSerialTwinIdentity:
    """Every kernel, lockstep vs serial, field for field."""

    @pytest.fixture(scope="class")
    def config(self):
        return ArchCampaignConfig(**SMALL)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_entries_identical(self, config, name):
        lock = arch_campaign.run_workload_trials(config, name)
        serial = arch_campaign.run_workload_trials(
            config, name, lockstep=False
        )
        assert lock.skip_reason is None
        assert entries(lock) == entries(serial)

    def test_limit_golden_entries_identical(self):
        """A golden run that hits max_instructions (never halts) drives
        the scheduler's walk-to-the-limit finalization path."""
        config = ArchCampaignConfig(
            trials_per_workload=8, injection_points=3, max_instructions=800,
            workloads=("gcc",),
        )
        bundle = build_workload("gcc")
        trace = load_program(bundle.program).run_with_trace(800)
        assert not trace.halted  # the premise of this test
        lock = arch_campaign.run_workload_trials(config, "gcc")
        serial = arch_campaign.run_workload_trials(
            config, "gcc", lockstep=False
        )
        assert entries(lock) == entries(serial)

    def test_sharded_entries_identical(self, config):
        for shard in ((0, 2), (1, 2)):
            lock = arch_campaign.run_workload_trials(
                config, "gzip", shard=shard
            )
            serial = arch_campaign.run_workload_trials(
                config, "gzip", shard=shard, lockstep=False
            )
            assert entries(lock) == entries(serial)


class TestCampaignJournals:
    def test_journals_byte_identical(self, tmp_path):
        config = ArchCampaignConfig(
            trials_per_workload=7, injection_points=3,
            workloads=("gcc", "mcf"),
        )
        lock = str(tmp_path / "lockstep.jsonl")
        twin = str(tmp_path / "twin.jsonl")
        run_campaign("arch", config, journal_path=lock)
        run_campaign("arch", config, journal_path=twin, lockstep=False)
        assert read_lines(lock) == read_lines(twin)

    def test_resumed_run_matches_serial(self, tmp_path):
        """Kill a lockstep campaign mid-run; the resume (also lockstep)
        must reproduce the uninterrupted serial journal bit for bit."""
        config = ArchCampaignConfig(
            trials_per_workload=9, injection_points=4, workloads=("gzip",)
        )
        full = str(tmp_path / "full.jsonl")
        serial_report = run_campaign(
            "arch", config, journal_path=full, lockstep=False
        )
        lines = open(full).read().splitlines()
        trial_lines = [l for l in lines if '"kind": "trial"' in l]
        interrupted = str(tmp_path / "interrupted.jsonl")
        with open(interrupted, "w") as handle:
            handle.write(
                "\n".join([lines[0]] + trial_lines[: len(trial_lines) // 2])
                + "\n"
            )
        resumed = run_campaign(
            "arch", config, journal_path=interrupted, resume=True
        )
        assert resumed.resumed == len(trial_lines) // 2
        assert resumed.result.trials == serial_report.result.trials

    def test_two_shard_service_matches_serial_twin(self, tmp_path):
        """The worker fleet (lockstep by default) and a --no-lockstep
        serial campaign write the same journal bytes."""
        config = ArchCampaignConfig(
            trials_per_workload=7, injection_points=3,
            workloads=("gcc", "vortex"),
        )
        twin = str(tmp_path / "twin.jsonl")
        run_campaign("arch", config, journal_path=twin, lockstep=False)

        spec = JobSpec.from_request({
            "level": "arch",
            "config": {
                "trials_per_workload": 7, "injection_points": 3,
                "workloads": ["gcc", "vortex"],
            },
            "shards_per_workload": 2,
        })
        assert spec.config == config
        store = ResultStore(":memory:")
        try:
            scheduler = CampaignScheduler(store, str(tmp_path))
            job_id = scheduler.submit(spec)["job_id"]
            while True:
                lease = scheduler.lease("lockstep-test-worker")
                if lease is None:
                    break
                unit = lease["unit"]
                result = execute_unit(lease["spec"], unit, None)
                scheduler.complete(
                    unit["job_id"], unit["unit_id"], "lockstep-test-worker",
                    result,
                )
            view = scheduler.job_view(job_id)
            assert view["state"] == "done"
            assert read_lines(view["journal_path"]) == read_lines(twin)
        finally:
            store.close()

    def test_scheduler_failure_falls_back_to_serial(
        self, tmp_path, monkeypatch
    ):
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )
        reference = arch_campaign.run_workload_trials(
            config, "gcc", lockstep=False
        )

        def broken(*args, **kwargs):
            raise RuntimeError("scheduler wedged")

        monkeypatch.setattr(arch_campaign, "run_lockstep_trials", broken)
        with pytest.warns(CampaignWorkloadWarning, match="falling back"):
            outcome = arch_campaign.run_workload_trials(config, "gcc")
        assert outcome.skip_reason is None
        assert entries(outcome) == entries(reference)


# --------------------------------------------- snapshot-boundary fast-forward


class TestSnapshotBoundaryFork:
    """The first fork lands exactly where a restored snapshot left the
    prefix simulator — zero prefix steps between restore and injection."""

    @pytest.fixture()
    def config(self):
        return ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )

    @pytest.fixture()
    def gcc_trace(self, gcc_bundle):
        return load_program(gcc_bundle.program).run_with_trace(400_000)

    def test_fork_at_restored_snapshot(
        self, tmp_path, monkeypatch, config, gcc_bundle, gcc_trace
    ):
        points = campaign_points(config, "gcc", gcc_trace)
        assert points[0] > 0
        # A snapshot cadence equal to the first injection point puts a
        # snapshot *exactly* at the first fork: the warm prefix restores
        # with retired == point and forks without stepping once.
        monkeypatch.setattr(
            arch_campaign, "ARCH_SNAPSHOT_INTERVAL", points[0]
        )
        cache = GoldenArtifactCache(str(tmp_path))
        reference = arch_campaign.run_workload_trials(config, "gcc")
        cold = arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        artifact = cache.load("arch", gcc_bundle.program, config)
        assert any(
            snap.retired == points[0] for snap in artifact.trace.snapshots
        )
        for lockstep in (True, False):
            warm = arch_campaign.run_workload_trials(
                config, "gcc", cache=cache, lockstep=lockstep
            )
            assert warm.golden_cache == "hit"
            assert entries(warm) == entries(reference)
        assert entries(cold) == entries(reference)

    def test_sharded_fork_at_restored_snapshot(
        self, tmp_path, monkeypatch, config, gcc_trace
    ):
        points = campaign_points(config, "gcc", gcc_trace)
        monkeypatch.setattr(
            arch_campaign, "ARCH_SNAPSHOT_INTERVAL", points[0]
        )
        cache = GoldenArtifactCache(str(tmp_path))
        serial = arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        sharded = []
        for index in range(2):
            outcome = arch_campaign.run_workload_trials(
                config, "gcc", shard=(index, 2), cache=cache
            )
            assert outcome.golden_cache == "hit"
            sharded.extend(entries(outcome))

        def key(entry):
            return (entry["point"], entry["index"])

        assert sorted(sharded, key=key) == sorted(entries(serial), key=key)

    def test_resumed_fork_at_restored_snapshot(
        self, tmp_path, monkeypatch, config, gcc_trace
    ):
        """A resumed run whose first *pending* trial sits exactly on a
        snapshot boundary: everything at the first point is already
        journaled, so the restore lands at the second point."""
        points = campaign_points(config, "gcc", gcc_trace)
        assert points[1] > points[0]
        monkeypatch.setattr(
            arch_campaign, "ARCH_SNAPSHOT_INTERVAL", points[1]
        )
        cache = GoldenArtifactCache(str(tmp_path))
        reference = arch_campaign.run_workload_trials(config, "gcc")
        reference_entries = entries(reference)
        completed = {
            trial_key("gcc", e["point"], e["index"])
            for e in reference_entries
            if e["point"] == points[0]
        }
        assert completed  # the first point did run trials
        arch_campaign.run_workload_trials(config, "gcc", cache=cache)
        for lockstep in (True, False):
            resumed = arch_campaign.run_workload_trials(
                config, "gcc", completed=completed, cache=cache,
                lockstep=lockstep,
            )
            assert resumed.golden_cache == "hit"
            assert entries(resumed) == [
                e for e in reference_entries if e["point"] != points[0]
            ]


# --------------------------------------------------- scheduler observability


class TestLockstepStats:
    def test_counters_account_for_every_trial(self):
        config = ArchCampaignConfig(
            trials_per_workload=20, injection_points=5, workloads=("gzip",)
        )
        bundle = build_workload("gzip")
        trace = load_program(bundle.program).run_with_trace(
            config.max_instructions
        )
        points = campaign_points(config, "gzip", trace)
        plan = [(point, [(index, 7 + index) for index in range(4)])
                for point in points]
        stats = LockstepStats()
        results = run_lockstep_trials(
            config, "gzip", trace, trace.memop_counts,
            load_program(bundle.program), plan, stats=stats,
        )
        total = sum(len(pending) for _, pending in plan)
        assert len(results) == total
        assert stats.forks == total
        # Every fork ends in exactly one of the terminal buckets.
        assert (
            stats.early_retired + stats.halted_in_lockstep
            + stats.finalized_asleep + stats.materialized
        ) == total
        # Result-bit flips on a real kernel reconverge often enough that
        # the early-retire fast path must actually fire.
        assert stats.early_retired > 0


# ----------------------------------------------- satellite regressions


def halt_only_bundle(name="gcc"):
    return WorkloadBundle(
        name=name, program=assemble(".text\nstart: halt\n", name)
    )


class TestZeroWriterGolden:
    """A golden run that writes no registers has no injection points; it
    must skip the workload, never divide by a zero point count."""

    @pytest.fixture()
    def config(self):
        return ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )

    def test_fresh_golden_skips(self, monkeypatch, config):
        monkeypatch.setattr(
            arch_campaign, "build_workload",
            lambda name, scale=1, seed=2005: halt_only_bundle(name),
        )
        with pytest.warns(CampaignWorkloadWarning, match="wrote no registers"):
            outcome = arch_campaign.run_workload_trials(config, "gcc")
        assert outcome.skip_reason is not None
        assert "wrote no registers" in outcome.skip_reason
        assert outcome.outcomes == []

    def test_cached_golden_skips_identically(
        self, tmp_path, monkeypatch, config
    ):
        """The regression: a cache *hit* used to bypass golden validation
        and crash in the trial-budget arithmetic (ZeroDivisionError)."""
        bundle = halt_only_bundle()
        monkeypatch.setattr(
            arch_campaign, "build_workload",
            lambda name, scale=1, seed=2005: bundle,
        )
        trace = load_program(bundle.program).run_with_trace(
            config.max_instructions
        )
        assert trace.halted and not trace.writer_steps
        cache = GoldenArtifactCache(str(tmp_path))
        assert cache.store(
            "arch", bundle.program, config, ArchGoldenArtifact(trace=trace)
        )
        with pytest.warns(CampaignWorkloadWarning, match="wrote no registers"):
            outcome = arch_campaign.run_workload_trials(
                config, "gcc", cache=cache
            )
        assert cache.hits == 1  # the hit path really was exercised
        assert outcome.skip_reason is not None
        assert "wrote no registers" in outcome.skip_reason


class TestRecordedMemopCounts:
    """Self-modifying code breaks any scheme that re-decodes the golden
    instruction stream from the *final* memory image: once a store has
    overwritten an executed instruction word, the final bytes no longer
    say whether that step was a memory operation. The trace must record
    the step-to-memop mapping while the golden run executes."""

    @pytest.fixture()
    def program(self):
        # The code block lives in .data (writable, hence executable with
        # no predecode caching) as raw encoded words: ldq r3, 0(r4) /
        # stl zero, 0(r5) / halt. The store overwrites the (already
        # executed) ldq word with HALT_WORD.
        source = "\n".join([
            ".text",
            "start: la r4, victim",
            " la r5, code",
            " jmp (r5)",
            ".data",
            "code:",
            f" .long {encode_memory(op.OP_LDQ, 3, 4, 0)}",
            f" .long {encode_memory(op.OP_STL, 31, 5, 0)}",
            f" .long {HALT_WORD}",
            " .long 0",
            "victim: .quad 0x1234",
        ])
        return assemble(source, "smc")

    @pytest.fixture()
    def trace(self, program):
        trace = load_program(program).run_with_trace(100)
        assert trace.halted
        return trace

    def test_counts_recorded_during_execution(self, trace):
        # Text setup (la expands to lda pairs), then jmp into .data:
        # ldq (memop 1), stl (memop 2), halt.
        assert [kind for kind, _, _ in trace.memops] == ["L", "S"]
        setup = len(trace.pcs) - 3  # instructions before the data block
        assert trace.memop_counts == [0] * setup + [1, 2, 2]

    def test_final_image_redecode_would_lie(self, trace):
        """The executed load's address now holds HALT in final memory —
        a re-decode there misses the memop the golden run performed."""
        load_pc = trace.pcs[trace.memop_counts.index(1)]
        word = trace.final_memory.read(load_pc, 4)
        assert word == HALT_WORD
        decoded = try_decode_word(word)
        assert decoded is None or decoded.opcode not in (
            op.LOAD_OPCODES | op.STORE_OPCODES
        )

    def test_lockstep_matches_serial_on_smc(self, program, trace):
        """The scheduler's golden-modifies-code path (per-round shadow
        processing, fetch from live memory) against the serial twin."""
        config = ArchCampaignConfig(
            trials_per_workload=6, injection_points=3, workloads=("gcc",)
        )
        plan = [
            (point, [(index, 3 * index + 1) for index in range(2)])
            for point in trace.writer_steps
        ]
        lock = run_lockstep_trials(
            config, "smc", trace, trace.memop_counts,
            load_program(program), plan,
        )
        prefix = load_program(program)
        for point, pending in plan:
            if prefix.retired < point and prefix.running:
                prefix.run(point - prefix.retired)
                prefix.resume()
            for index, bit in pending:
                serial = arch_campaign._run_trial(
                    "smc", prefix, trace, trace.memop_counts, point, bit,
                    config,
                )
                assert lock[(point, index)] == serial, (point, index, bit)
