"""Resilient campaign execution: containment, durability, parallelism.

The fault-injection campaigns in :mod:`repro.faults` define *what* a
trial is; this package owns *how* thousands of them run without losing
work. It treats the harness itself as part of the fault model: a trial
that crashes or hangs the simulator is recorded as a ``harness-crash`` /
``harness-timeout`` outcome (with enough context to replay it) rather
than aborting the campaign; results stream to an append-only JSONL
journal so an interrupted run resumes exactly where it stopped; and
workloads can fan out across processes.

Entry points:

- :func:`~repro.campaign.runner.run_campaign` — run a campaign with any
  combination of journal, resume, timeout budget, and parallelism.
- :func:`~repro.campaign.status.summarize_journal` — inspect a partial
  run (``repro campaign status <journal>``).
"""

from repro.campaign.guard import TrialGuard, TrialTimeout, timeout_supported
from repro.campaign.outcomes import (
    CampaignWorkloadWarning,
    GoldenRunError,
    HARNESS_STATUSES,
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    TrialOutcome,
    WorkloadRunOutcome,
    trial_key,
    validate_shard,
)
from repro.campaign.runner import (
    CAMPAIGN_LEVELS,
    CampaignRunReport,
    ExecutionPolicy,
    run_campaign,
)
from repro.campaign.status import (
    CampaignStatus,
    WorkloadStatus,
    format_status,
    summarize_journal,
)

__all__ = [
    "CAMPAIGN_LEVELS",
    "CampaignRunReport",
    "CampaignStatus",
    "CampaignWorkloadWarning",
    "ExecutionPolicy",
    "GoldenRunError",
    "HARNESS_STATUSES",
    "OUTCOME_CRASH",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "TrialGuard",
    "TrialOutcome",
    "TrialTimeout",
    "WorkloadRunOutcome",
    "WorkloadStatus",
    "format_status",
    "run_campaign",
    "summarize_journal",
    "timeout_supported",
    "trial_key",
    "validate_shard",
]
