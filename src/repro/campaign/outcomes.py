"""Trial outcome records for the resilient campaign runner.

Every injection trial — whether it completed, crashed the harness, or hung
past its wall-clock budget — produces exactly one :class:`TrialOutcome`.
The harness failure statuses extend the paper's fault-outcome taxonomy one
level up: a trial that kills or wedges the *simulator* is itself an
observation worth recording (with enough context to replay it), never a
reason to abort the campaign.

Outcome statuses:

``ok``
    The trial ran to completion; ``record`` holds the campaign-level
    trial result (:class:`~repro.faults.classify.ArchTrialResult` or
    :class:`~repro.faults.classify.UarchTrialResult`).
``harness-crash``
    The simulator raised while executing the trial. ``error`` captures the
    exception type, message, and traceback plus the injection descriptor
    (workload, point, trial index, per-trial seed) needed to replay it.
``harness-timeout``
    The trial exceeded its wall-clock budget and was interrupted by the
    guard; ``error`` carries the budget and the same replay descriptor.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.faults.classify import ArchTrialResult, UarchTrialResult

class GoldenRunError(RuntimeError):
    """A workload's fault-free golden run failed; the workload is skipped."""


class CampaignWorkloadWarning(UserWarning):
    """Structured warning emitted when a campaign skips a whole workload."""


OUTCOME_OK = "ok"
OUTCOME_CRASH = "harness-crash"
OUTCOME_TIMEOUT = "harness-timeout"

HARNESS_STATUSES = (OUTCOME_CRASH, OUTCOME_TIMEOUT)

# Trial-record fields added after journals already existed in the wild:
# omitted from journal entries while None (their default), so campaigns
# that never enable the corresponding detectors keep writing entries
# byte-identical to older versions. ``from_entry`` tolerates their absence
# because the dataclass defaults them to None.
_OMIT_RECORD_FIELDS_WHEN_NONE = (
    "miss_spike_latency",
    "stall_outlier_latency",
    "spurious_memop_latency",
)


def _record_type(level: str) -> type:
    # repro.faults imports this package for the guard/outcome types, so
    # the trial-record classes must be resolved lazily, not at import.
    from repro.faults.classify import ArchTrialResult, UarchTrialResult

    return {"arch": ArchTrialResult, "uarch": UarchTrialResult}[level]


def trial_key(workload: str, point: int, index: int) -> str:
    """The stable identity of one trial inside a campaign."""
    return f"{workload}:{point}:{index}"


def validate_shard(shard: tuple[int, int] | None) -> None:
    """Check a ``(shard_index, shard_count)`` stride-slice descriptor."""
    if shard is None:
        return
    shard_index, shard_count = shard
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard index must be in [0, {shard_count}), got {shard_index}"
        )


@dataclass(frozen=True)
class TrialOutcome:
    """One journaled trial: its identity, status, and result or error."""

    key: str
    workload: str
    point: int
    index: int
    status: str
    record: Any | None = None
    error: dict | None = None

    @property
    def order(self) -> tuple[int, int]:
        return (self.point, self.index)

    def to_entry(self) -> dict:
        """The journal (JSONL) representation."""
        entry = {
            "kind": "trial",
            "key": self.key,
            "workload": self.workload,
            "point": self.point,
            "index": self.index,
            "status": self.status,
        }
        if self.record is not None:
            record = asdict(self.record)
            for name in _OMIT_RECORD_FIELDS_WHEN_NONE:
                if record.get(name) is None:
                    record.pop(name, None)
            entry["record"] = record
        if self.error is not None:
            entry["error"] = self.error
        return entry

    @classmethod
    def from_entry(cls, entry: dict, level: str) -> "TrialOutcome":
        record = None
        if entry.get("record") is not None:
            record = _record_type(level)(**entry["record"])
        return cls(
            key=entry["key"],
            workload=entry["workload"],
            point=entry["point"],
            index=entry["index"],
            status=entry["status"],
            record=record,
            error=entry.get("error"),
        )


@dataclass
class WorkloadRunOutcome:
    """Everything one workload contributed to a campaign run.

    ``skip_reason`` is set when the workload could not run at all (its
    golden run raised, or a parallel worker died twice); its trials are
    then absent rather than failed. ``total_bits`` is the injectable-state
    population for uarch campaigns (zero for arch). ``golden_cache``
    reports how the golden artifacts were obtained — ``"hit"`` (loaded
    from the cache), ``"miss"`` (computed and stored), or ``None`` (no
    cache in use); it is report-level metadata and never journaled, so
    cached and uncached journals stay byte-identical.

    Adaptive (planner-driven) runs additionally report the sampled
    injection points, the prescreened-dead subset, and — when the full
    local planner loop ran — the planner's per-workload summary. Like
    ``golden_cache`` these are report/scheduler metadata, never part of
    the trial journal entries themselves.
    """

    workload: str
    outcomes: list[TrialOutcome] = field(default_factory=list)
    skip_reason: str | None = None
    total_bits: int = 0
    golden_cache: str | None = None
    planner_points: tuple[int, ...] | None = None
    prescreened_points: tuple[int, ...] | None = None
    planner_summary: dict | None = None
