"""The ReStore rollback controller.

Wires the pieces together on a live pipeline: symptom detectors decide when
an event is suspicious, the checkpoint manager restores the older of the
two live checkpoints, event logs track the original execution so the
redundant one can be compared against it, and statistics distinguish
detected errors from false positives.

Re-execution semantics follow Section 3.2:

- An **exception** symptom rolls back once; if the same exception reappears
  at the same architectural position during re-execution it is genuine and
  is delivered normally ("either the exception is genuine or a data
  corruption occurred prior to the checkpoint").
- A **high-confidence misprediction** rolls back (immediately or at the end
  of the interval, per the Section 5.2.3 policies); during re-execution the
  branch-outcome log provides near-perfect prediction and outcome
  comparison. A divergence means a soft error was present in one of the two
  executions — with arbitration enabled a third execution decides; without
  it the redundant execution is trusted. No divergence means the symptom
  was a false positive.
- Symptom-triggered rollbacks are suppressed *during* re-execution until
  the machine has passed the position of the triggering symptom.

Dynamic tuning (Section 3.2.3): a burst of false-positive control-flow
symptoms temporarily disables the control-flow detector.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.restore.checkpoint import CheckpointManager
from repro.restore.eventlog import BranchOutcomeLog, LoadValueQueue
from repro.restore.symptoms import SymptomDetector, default_detectors
from repro.uarch.pipeline import Pipeline, RetiredInst


class RollbackPolicy(Enum):
    """When to act on a control-flow symptom (Figure 7's imm vs delayed)."""

    IMMEDIATE = "imm"
    DELAYED = "delayed"


@dataclass
class TuningConfig:
    """Dynamic false-positive throttling (Section 3.2.3)."""

    enabled: bool = True
    window: int = 2000  # retired instructions over which FPs are counted
    threshold: int = 3  # FPs within the window that trip the breaker
    cooldown: int = 5000  # instructions to ignore control-flow symptoms


@dataclass
class ControllerStats:
    """Counters exposed for evaluation and the performance model."""

    rollbacks: int = 0
    rollback_distance_total: int = 0
    detected_errors: int = 0
    false_positives: int = 0
    genuine_exceptions: int = 0
    divergences: int = 0
    arbitrations: int = 0
    suppressed_symptoms: int = 0
    tuning_activations: int = 0
    lvq_mismatches: int = 0
    # Recent false-positive positions, pruned to the tuning window at every
    # append so memory stays bounded over arbitrarily long campaigns.
    fp_positions: deque[int] = field(default_factory=deque)


class ReStoreController:
    """Symptom-based detection and checkpoint recovery on a pipeline."""

    def __init__(
        self,
        pipeline: Pipeline,
        interval: int = 100,
        detectors: list[SymptomDetector] | None = None,
        policy: RollbackPolicy = RollbackPolicy.IMMEDIATE,
        use_event_log: bool = True,
        arbitration: bool = False,
        tuning: TuningConfig | None = None,
        telemetry=None,
    ):
        self.pipeline = pipeline
        self.interval = interval
        self.policy = policy
        self.use_event_log = use_event_log
        self.arbitration = arbitration
        self.tuning = tuning or TuningConfig(enabled=False)
        self.telemetry = telemetry
        self.detectors = detectors if detectors is not None else default_detectors()
        self.checkpoints = CheckpointManager(pipeline, interval,
                                             telemetry=telemetry)
        self.branch_log = BranchOutcomeLog()
        self.lvq = LoadValueQueue()
        self.stats = ControllerStats()

        # Re-execution state.
        self.mode = "normal"  # "normal" | "reexec"
        self._reexec_until = 0  # architectural position where reexec ends
        self._trigger: tuple[str, int, int] | None = None  # (kind, pos, pc)
        self._rollback_history: dict[tuple[str, int, int], int] = {}
        self._divergence_in_reexec = False
        self._pending_rollback = False
        # Deferred rollback: (trigger key, which checkpoint to restore).
        self._fire_rollback: tuple[tuple[str, int, int], str] | None = None
        self._cfv_disabled_until = -1

        # External observer called after the controller's own retire work.
        self.user_retire_hook = None

        pipeline.symptom_handler = self._on_symptom
        pipeline.on_retire = self._on_retire
        pipeline.pre_cycle_hook = self._on_cycle_start
        if telemetry is not None:
            pipeline.telemetry = telemetry

    def _emit(self, kind: str, **fields) -> None:
        """Emit a trace event; all call sites are cold (symptom/rollback/
        breaker frequency, never per cycle or per retirement)."""
        if self.telemetry is None:
            return
        event = {
            "kind": kind,
            "cycle": self.pipeline.cycle_count,
            "position": self.pipeline.retired_count,
        }
        event.update(fields)
        self.telemetry.emit(event)

    # -------------------------------------------------------------- retire

    def _on_retire(self, record: RetiredInst) -> None:
        position = self.pipeline.retired_count  # position of this retirement
        if record.is_cond:
            if self.mode == "normal":
                self.branch_log.record(position, record.pc, record.taken)
            else:
                recorded = self.branch_log.outcome_at(position)
                if recorded is not None and recorded != (record.pc, record.taken):
                    self._handle_divergence(position, record.pc)
                # During re-execution the redundant outcome becomes the new
                # truth for any later comparison round.
                self.branch_log.record(position, record.pc, record.taken)
        if record.is_load:
            if self.mode == "normal":
                self.lvq.record(position, record.load_addr, record.value)
            else:
                recorded = self.lvq.entry_at(position)
                if recorded is not None and recorded != (
                    record.load_addr,
                    record.value,
                ):
                    self.stats.lvq_mismatches += 1
                self.lvq.record(position, record.load_addr, record.value)

        if (
            self._pending_rollback
            and self.mode == "normal"
            and self.checkpoints.since_last_checkpoint + 1 >= self.interval
        ):
            # Delayed policy: the interval is complete. Restore the
            # checkpoint at the *start* of the polluted interval (the newer
            # of the two live ones) so the interval is re-executed exactly
            # once.
            self._pending_rollback = False
            self._schedule_rollback(self._trigger, "newest")
        if self._fire_rollback is not None:
            # A rollback is scheduled for the top of the next cycle
            # (rolling back from inside the retire stage would corrupt it).
            # Retirement is frozen and checkpoint bookkeeping is skipped so
            # no boundary checkpoint is created and the restore target
            # survives until the rollback fires.
            if self.user_retire_hook is not None:
                self.user_retire_hook(record)
            return
        self.checkpoints.note_retirement(record)
        oldest_pos = self.checkpoints.oldest.retired_count
        self.branch_log.prune_before(oldest_pos)
        self.lvq.prune_before(oldest_pos)

        if self.mode == "reexec" and self.pipeline.retired_count > self._reexec_until:
            self._finish_reexecution()
        if self.user_retire_hook is not None:
            self.user_retire_hook(record)

    def _schedule_rollback(self, trigger: tuple[str, int, int],
                           which: str) -> None:
        """Arrange a rollback at the top of the next cycle, restoring the
        ``"newest"`` or ``"oldest"`` live checkpoint, and freeze retirement
        until it fires (a rollback inside the retire stage would corrupt
        the stage's own bookkeeping)."""
        self._fire_rollback = (trigger, which)
        self.pipeline.retire_stall = True

    def _on_cycle_start(self) -> None:
        """Execute a deferred rollback, outside the retire stage.

        Two paths defer: the delayed policy (restore the *newest* live
        checkpoint — the start of the polluted interval — which is what
        lets delayed amortise multiple symptoms per interval and overtake
        the immediate policy at long intervals, Figure 7) and arbitration
        (restore the *oldest*, guaranteeing the third execution replays the
        diverging branch)."""
        if self._fire_rollback is None:
            return
        trigger, which = self._fire_rollback
        self._fire_rollback = None
        self.pipeline.retire_stall = False
        checkpoint = (
            self.checkpoints.newest if which == "newest"
            else self.checkpoints.oldest
        )
        self._do_rollback(trigger, checkpoint=checkpoint)

    def _handle_divergence(self, position: int, pc: int) -> None:
        self.stats.divergences += 1
        self.stats.detected_errors += 1
        # Mark the re-execution as having found a real error so
        # _finish_reexecution does not also count it as a false positive.
        self._divergence_in_reexec = True
        self._emit("replay_divergence", pc=pc)
        if self.arbitration:
            # Third execution: roll back again and let majority decide. The
            # redundant execution has already overwritten the log entries up
            # to this position, so the third run compares against the second.
            self.stats.arbitrations += 1
            self._schedule_rollback(("arbitration", position, pc), "oldest")

    def _finish_reexecution(self) -> None:
        kind = self._trigger[0] if self._trigger else ""
        if self._divergence_in_reexec:
            verdict = "divergence"
        elif kind == "hc_mispredict":
            verdict = "false_positive"
            self.stats.false_positives += 1
            self.stats.fp_positions.append(self.pipeline.retired_count)
            self._maybe_trip_breaker()
        elif kind == "exception":
            # The exception did not reappear: a soft error was detected and
            # recovered (Section 3.2.1).
            verdict = "exception_absent"
            self.stats.detected_errors += 1
        else:
            verdict = "clean"
        self._emit("rollback_end", verdict=verdict)
        self.mode = "normal"
        self._trigger = None
        self._divergence_in_reexec = False
        self.branch_log.end_replay()
        self.pipeline.branch_oracle = None

    def _maybe_trip_breaker(self) -> None:
        now = self.pipeline.retired_count
        positions = self.stats.fp_positions
        # Drop entries that have aged out of the tuning window. Entries are
        # appended in time order, so pruning from the left is enough; this
        # also bounds the deque over arbitrarily long campaigns.
        cutoff = now - self.tuning.window
        while positions and positions[0] < cutoff:
            positions.popleft()
        if not self.tuning.enabled:
            return
        if len(positions) >= self.tuning.threshold:
            self._cfv_disabled_until = now + self.tuning.cooldown
            self.stats.tuning_activations += 1
            self._emit("breaker_trip", disabled_until=self._cfv_disabled_until)

    # ------------------------------------------------------------ symptoms

    def _on_symptom(self, kind: str, payload) -> bool:
        """Pipeline symptom hook; True = handled (rollback performed)."""
        detector = self._matching_detector(kind, payload)
        if detector is None:
            return False
        position = self.pipeline.retired_count
        pc = self._symptom_pc(kind, payload)
        key = (kind, position, pc)

        if kind != "exception" and self._cfv_disabled_until > position:
            self.stats.suppressed_symptoms += 1
            self._emit("symptom_suppressed", symptom=kind, pc=pc,
                       reason="breaker")
            return False
        if self.mode == "reexec":
            if kind == "exception":
                if self._rollback_history.get(key):
                    # Same exception at the same point: genuine.
                    self.stats.genuine_exceptions += 1
                    self._emit("symptom_suppressed", symptom=kind, pc=pc,
                               reason="genuine_exception")
                    return False
                # A different exception surfaced during re-execution: the
                # original execution was the corrupt one; errors detected.
                self._divergence_in_reexec = True
                self.stats.detected_errors += 1
                self._emit("symptom_fired", symptom=kind, pc=pc,
                           detector=type(detector).__name__)
                self._do_rollback(key)
                return True
            # Control-flow and deadlock symptoms are suppressed while the
            # machine is still re-executing the suspicious window.
            if position <= self._reexec_until:
                self.stats.suppressed_symptoms += 1
                self._emit("symptom_suppressed", symptom=kind, pc=pc,
                           reason="reexec_window")
                return False
            # Past the window: treat as a fresh symptom below.
            self._finish_reexecution()

        self._emit("symptom_fired", symptom=kind, pc=pc,
                   detector=type(detector).__name__)
        if kind == "hc_mispredict" and self.policy is RollbackPolicy.DELAYED:
            self._trigger = key
            self._pending_rollback = True
            return False  # let normal misprediction recovery proceed
        self._do_rollback(key)
        return True

    def _matching_detector(self, kind: str, payload) -> SymptomDetector | None:
        for detector in self.detectors:
            if detector.observe(kind, payload):
                return detector
        return None

    @staticmethod
    def _symptom_pc(kind: str, payload) -> int:
        # hc_mispredict carries (pc, rob_idx); exception carries (exc, pc);
        # cache/TLB misses carry (position, pc) and stall_streak carries
        # (position, streak, pc) — the PC-last kinds.
        if isinstance(payload, tuple) and payload:
            return int(payload[0] if kind == "hc_mispredict" else payload[-1])
        return 0

    def _do_rollback(self, key: tuple[str, int, int], checkpoint=None) -> None:
        kind, position, _pc = key
        self._rollback_history[key] = self._rollback_history.get(key, 0) + 1
        if checkpoint is None:
            checkpoint = self.checkpoints.oldest
        self.stats.rollbacks += 1
        distance = max(0, position - checkpoint.retired_count)
        self.stats.rollback_distance_total += distance
        self._emit("rollback_begin", symptom=kind, from_position=position,
                   to_position=checkpoint.retired_count, distance=distance)
        if self.use_event_log:
            self.branch_log.begin_replay(checkpoint.retired_count)
            self.pipeline.branch_oracle = self.branch_log
        self.checkpoints.rollback(checkpoint)
        # The rollback rewound the architectural position; detectors keyed
        # by retired position must discard observations past the restore
        # point or their windows poison post-rollback decisions.
        for detector in self.detectors:
            detector.on_rollback(checkpoint.retired_count)
        self.mode = "reexec"
        self._trigger = key
        self._reexec_until = position
        self._divergence_in_reexec = False

    # ------------------------------------------------------------- reports

    @property
    def average_rollback_distance(self) -> float:
        if self.stats.rollbacks == 0:
            return 0.0
        return self.stats.rollback_distance_total / self.stats.rollbacks

    def summary(self) -> dict[str, int | float]:
        return {
            "rollbacks": self.stats.rollbacks,
            "false_positives": self.stats.false_positives,
            "detected_errors": self.stats.detected_errors,
            "genuine_exceptions": self.stats.genuine_exceptions,
            "divergences": self.stats.divergences,
            "suppressed_symptoms": self.stats.suppressed_symptoms,
            "tuning_activations": self.stats.tuning_activations,
            "average_rollback_distance": self.average_rollback_distance,
            "checkpoints_created": self.checkpoints.created,
        }
