"""The paper's headline claims, collated (abstract + Section 7).

"The baseline processor had an intrinsic error masking rate of
approximately 93% ... With a 100 instruction checkpoint interval, an
example ReStore implementation detects and recovers from half of all
failures [2x MTBF]. Covering the most vulnerable portions ... with
parity/ECC and overlaying ReStore extends the mean time between failures
by 7x."
"""

from repro.restore.hardened import ProtectionMap
from repro.util.tables import format_table

from .conftest import emit, run_shared_uarch_campaign


def test_headline_numbers(benchmark, arch_campaign):
    uarch = benchmark.pedantic(run_shared_uarch_campaign, rounds=1, iterations=1)
    pmap = ProtectionMap()

    baseline = uarch.baseline_failure_estimate().proportion
    restore = uarch.failure_estimate(100, require_confident_cfv=True).proportion
    combined = uarch.failure_estimate(
        100, require_confident_cfv=True, protection=pmap
    ).proportion

    trials = len(uarch.trials)

    def factor(value):
        if value:
            return f"{baseline / value:.1f}x"
        return f">{baseline / (3 / trials):.0f}x (0/{trials})"

    rows = [
        ["software-level masking (Fig 2)", "~59%",
         f"{arch_campaign.masked_estimate.proportion:.1%}"],
        ["exc+cfv coverage of failures @100 (Fig 2)", "~80%",
         f"{arch_campaign.failure_coverage(100).proportion:.1%}"],
        ["microarchitectural masking (Fig 4)", "~92-93%",
         f"{uarch.masked_estimate().proportion:.1%}"],
        ["failure coverage @100, perfect cfv (Fig 4)", "~50%",
         f"{uarch.coverage_of_failures(100).proportion:.1%}"],
        ["latch-only coverage @100 (Sec 5.1.2)", "~75%",
         f"{uarch.latch_only_view().coverage_of_failures(100).proportion:.1%}"],
        ["ReStore MTBF improvement @100", "~2x", factor(restore)],
        ["lhf+ReStore MTBF improvement @100", "~7x", factor(combined)],
    ]
    text = format_table(
        ["headline metric", "paper", "measured"],
        rows,
        title="Headline paper-vs-measured summary",
    )
    emit("headline_numbers", text)

    restore_factor = baseline / restore if restore else float("inf")
    combined_factor = baseline / combined if combined else float("inf")
    assert restore_factor > 1.3
    assert combined_factor > restore_factor
