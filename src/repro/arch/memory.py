"""Sparse paged memory with protection.

The address space is 64-bit but programs map only a handful of pages, so a
random corruption of a pointer almost always lands on an unmapped page and
raises an access violation — the effect the paper identifies as the dominant
soft-error symptom ("for many workloads, the virtual address space is
significantly larger than the memory footprint of the application").

Pages are 8 KiB. Reads and writes that cross a page boundary are handled
(byte-by-byte), though the aligned accesses the ISA requires never cross.
"""

from __future__ import annotations

from enum import Enum

from repro.arch.exceptions import AccessViolation
from repro.util.bitops import MASK64

PAGE_SHIFT = 13
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class PageProtection(Enum):
    """Per-page protection; the ISA has no execute permission bit."""

    READ_ONLY = "r"
    READ_WRITE = "rw"


class SparseMemory:
    """Dictionary-of-pages memory image."""

    def __init__(self):
        self._pages: dict[int, bytearray] = {}
        self._protection: dict[int, PageProtection] = {}
        # Page numbers whose bytearray may be shared with another image
        # after clone_cow(); a writer copies the page out before its first
        # mutation. Empty for images that never took part in a COW clone,
        # so the write-path barrier is one failed set lookup.
        self._shared: set[int] = set()
        # Bumped by every route that can change read-only (text) bytes:
        # mapping and the protection-bypassing loader. Consumers that cache
        # derived views of text pages (the simulator's pre-decoded
        # instruction cache) compare this to detect staleness — ordinary
        # ``write`` calls cannot touch read-only pages, so they do not bump.
        self.image_version = 0

    # -------------------------------------------------------------- mapping

    def map_region(
        self,
        base: int,
        size: int,
        protection: PageProtection = PageProtection.READ_WRITE,
    ) -> None:
        """Map (and zero) every page overlapping [base, base+size)."""
        if size <= 0:
            raise ValueError("size must be positive")
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
            self._protection[page] = protection
        self.image_version += 1

    def is_mapped(self, address: int) -> bool:
        return (address & MASK64) >> PAGE_SHIFT in self._pages

    def protection_at(self, address: int) -> PageProtection | None:
        return self._protection.get((address & MASK64) >> PAGE_SHIFT)

    def mapped_pages(self) -> list[int]:
        """Sorted page numbers currently mapped."""
        return sorted(self._pages)

    # ------------------------------------------------------------- loading

    def load_bytes(self, base: int, data: bytes) -> None:
        """Write raw bytes ignoring protection (loader and fault injection).

        This is the one route that can mutate read-only text, so it bumps
        ``image_version`` — which is what invalidates any pre-decoded
        instruction cache built over the text segment (e.g. after a fault
        campaign flips an instruction encoding bit in place).
        """
        self.image_version += 1
        address = base & MASK64
        offset = 0
        while offset < len(data):
            page = (address + offset) >> PAGE_SHIFT
            if page not in self._pages:
                raise AccessViolation(address + offset, "load-image")
            if page in self._shared:
                self._pages[page] = bytearray(self._pages[page])
                self._shared.discard(page)
            page_offset = (address + offset) & PAGE_MASK
            chunk = min(len(data) - offset, PAGE_SIZE - page_offset)
            self._pages[page][page_offset:page_offset + chunk] = (
                data[offset:offset + chunk]
            )
            offset += chunk

    # ------------------------------------------------------------ accesses

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes as a little-endian unsigned integer."""
        address &= MASK64
        page = address >> PAGE_SHIFT
        offset = address & PAGE_MASK
        data = self._pages.get(page)
        if data is None:
            raise AccessViolation(address, "read")
        if offset + size <= PAGE_SIZE:
            return int.from_bytes(data[offset:offset + size], "little")
        return self._read_cross_page(address, size)

    def _read_cross_page(self, address: int, size: int) -> int:
        result = bytearray()
        for index in range(size):
            byte_address = (address + index) & MASK64
            page = self._pages.get(byte_address >> PAGE_SHIFT)
            if page is None:
                raise AccessViolation(byte_address, "read")
            result.append(page[byte_address & PAGE_MASK])
        return int.from_bytes(bytes(result), "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Write ``size`` bytes little-endian, honouring protection."""
        address &= MASK64
        page = address >> PAGE_SHIFT
        offset = address & PAGE_MASK
        data = self._pages.get(page)
        if data is None:
            raise AccessViolation(address, "write")
        if self._protection[page] is PageProtection.READ_ONLY:
            raise AccessViolation(address, "write-protected")
        if page in self._shared:
            data = self._pages[page] = bytearray(data)
            self._shared.discard(page)
        if offset + size <= PAGE_SIZE:
            data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
                size, "little"
            )
            return
        self._write_cross_page(address, size, value)

    def _write_cross_page(self, address: int, size: int, value: int) -> None:
        raw = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        for index, byte in enumerate(raw):
            byte_address = (address + index) & MASK64
            page_number = byte_address >> PAGE_SHIFT
            page = self._pages.get(page_number)
            if page is None:
                raise AccessViolation(byte_address, "write")
            if self._protection[page_number] is PageProtection.READ_ONLY:
                raise AccessViolation(byte_address, "write-protected")
            if page_number in self._shared:
                page = self._pages[page_number] = bytearray(page)
                self._shared.discard(page_number)
            page[byte_address & PAGE_MASK] = byte

    # ----------------------------------------------------------- snapshots

    def clone(self) -> "SparseMemory":
        """Deep copy of the full image (used for golden-run snapshots)."""
        copy = SparseMemory()
        copy._pages = {page: bytearray(data) for page, data in self._pages.items()}
        copy._protection = dict(self._protection)
        copy.image_version = self.image_version
        return copy

    def clone_cow(self) -> "SparseMemory":
        """Copy-on-write copy: pages are shared until either side writes.

        Both images mark every current page as shared; the first mutation
        of a shared page (an ordinary ``write`` or a loader ``load_bytes``)
        copies that page out for the writer, leaving other sharers reading
        the original bytes. Reads never copy. Cloning is O(pages) dict
        copies instead of O(bytes), which is what lets a fault campaign
        materialize a diverged trial's private memory mid-run without
        duplicating the whole image up front.
        """
        copy = SparseMemory()
        copy._pages = dict(self._pages)
        copy._protection = dict(self._protection)
        copy.image_version = self.image_version
        shared = set(self._pages)
        self._shared |= shared
        copy._shared = set(shared)
        return copy

    def equals(self, other: "SparseMemory") -> bool:
        """Content equality over all mapped pages."""
        if self._pages.keys() != other._pages.keys():
            return False
        return all(self._pages[page] == other._pages[page] for page in self._pages)

    def diff_addresses(self, other: "SparseMemory", limit: int = 16) -> list[int]:
        """First differing byte addresses, up to ``limit`` (for reports)."""
        differences: list[int] = []
        for page in sorted(set(self._pages) | set(other._pages)):
            mine = self._pages.get(page)
            theirs = other._pages.get(page)
            if mine is None or theirs is None:
                differences.append(page << PAGE_SHIFT)
                if len(differences) >= limit:
                    return differences
                continue
            if mine == theirs:
                continue
            for offset in range(PAGE_SIZE):
                if mine[offset] != theirs[offset]:
                    differences.append((page << PAGE_SHIFT) + offset)
                    if len(differences) >= limit:
                        return differences
        return differences
