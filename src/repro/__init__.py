"""ReStore: symptom-based soft error detection in microprocessors.

A full reproduction of Wang & Patel (DSN 2005): an Alpha-like ISA and
architectural simulator, a cycle-level out-of-order pipeline with
bit-addressable state, the ReStore checkpoint/symptom/rollback architecture,
statistical fault-injection campaigns, a performance model for
false-positive symptoms, and FIT/MTBF reliability scaling.

Typical entry points:

>>> from repro.workloads import build_workload
>>> from repro.uarch import load_pipeline
>>> from repro.restore import ReStoreController
>>> bundle = build_workload("gcc")
>>> pipeline = load_pipeline(bundle.program)
>>> controller = ReStoreController(pipeline, interval=100)
>>> pipeline.run(100_000)
>>> pipeline.halted
True
"""

__version__ = "1.0.0"
