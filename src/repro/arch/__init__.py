"""Architectural (ISA-level) simulator — the paper's "virtual machine".

This level abstracts away the processor implementation: one instruction
executes per step against architectural state (registers, PC, memory). The
paper uses exactly such a simulator for the Figure 2 fault-injection study
("we abstract away the processor implementation by assuming that a soft
error has already corrupted architectural state") and as the golden reference
the detailed pipeline model is compared against.
"""

from repro.arch.exceptions import (
    AccessViolation,
    AlignmentFault,
    ArithmeticTrap,
    ExceptionKind,
    IllegalOpcode,
    IsaException,
)
from repro.arch.memory import PageProtection, SparseMemory
from repro.arch.simulator import ArchSimulator, StopReason, load_program
from repro.arch.state import ArchState
from repro.arch.tracing import ExecutionTrace, MemoryOp

__all__ = [
    "AccessViolation",
    "AlignmentFault",
    "ArchSimulator",
    "ArchState",
    "ArithmeticTrap",
    "ExceptionKind",
    "ExecutionTrace",
    "IllegalOpcode",
    "IsaException",
    "MemoryOp",
    "PageProtection",
    "SparseMemory",
    "StopReason",
    "load_program",
]
