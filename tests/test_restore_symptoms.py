"""Symptom detector framework."""

from repro.restore.symptoms import (
    CacheMissSymptomDetector,
    ExceptionSymptomDetector,
    HighConfidenceMispredictDetector,
    WatchdogSymptomDetector,
    default_detectors,
)


class TestBasicDetectors:
    def test_exception_detector_fires(self):
        detector = ExceptionSymptomDetector()
        assert detector.observe("exception", (1, 0x100))
        assert not detector.observe("hc_mispredict", None)
        assert detector.observed == 1 and detector.triggered == 1

    def test_hc_mispredict_detector(self):
        detector = HighConfidenceMispredictDetector()
        assert detector.observe("hc_mispredict", (0x100, 3))
        assert not detector.observe("mispredict", (0x100, 3))

    def test_watchdog_detector(self):
        detector = WatchdogSymptomDetector()
        assert detector.observe("deadlock", None)

    def test_defaults(self):
        kinds = set()
        for detector in default_detectors():
            kinds.update(detector.kinds)
        assert kinds == {"exception", "hc_mispredict", "deadlock"}


class TestCacheMissDetector:
    def test_threshold_one_fires_immediately(self):
        detector = CacheMissSymptomDetector(threshold=1)
        assert detector.observe("dcache_miss", 100)

    def test_burst_threshold(self):
        detector = CacheMissSymptomDetector(threshold=3, window=50)
        assert not detector.observe("dcache_miss", 100)
        assert not detector.observe("dcache_miss", 110)
        assert detector.observe("dcache_miss", 120)

    def test_window_expiry(self):
        detector = CacheMissSymptomDetector(threshold=2, window=10)
        assert not detector.observe("dcache_miss", 100)
        # Far outside the window: the counter effectively restarts.
        assert not detector.observe("dcache_miss", 500)

    def test_counts_misses_of_selected_kinds_only(self):
        detector = CacheMissSymptomDetector(kinds=("dtlb_miss",), threshold=1)
        assert not detector.observe("dcache_miss", 1)
        assert detector.observe("dtlb_miss", 1)
