"""Bit-manipulation primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bitops import (
    MASK32,
    MASK64,
    bit_is_set,
    extract_bits,
    flip_bit,
    popcount,
    set_bits,
    sign_extend,
    to_signed64,
    to_unsigned64,
)

u64 = st.integers(min_value=0, max_value=MASK64)


class TestWrapping:
    def test_to_unsigned64_wraps_positive_overflow(self):
        assert to_unsigned64(1 << 64) == 0
        assert to_unsigned64((1 << 64) + 5) == 5

    def test_to_unsigned64_wraps_negative(self):
        assert to_unsigned64(-1) == MASK64
        assert to_unsigned64(-2) == MASK64 - 1

    def test_to_signed64_positive(self):
        assert to_signed64(5) == 5
        assert to_signed64((1 << 63) - 1) == (1 << 63) - 1

    def test_to_signed64_negative(self):
        assert to_signed64(MASK64) == -1
        assert to_signed64(1 << 63) == -(1 << 63)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_signed_roundtrip(self, value):
        assert to_signed64(to_unsigned64(value)) == value


class TestSignExtend:
    def test_positive_stays(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_negative_extends(self):
        assert sign_extend(0x80, 8) == to_unsigned64(-128)
        assert sign_extend(0xFFFF, 16) == MASK64

    def test_full_width_identity(self):
        assert sign_extend(MASK64, 64) == MASK64
        assert sign_extend(5, 64) == 5

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)
        with pytest.raises(ValueError):
            sign_extend(1, 65)

    @given(st.integers(min_value=0, max_value=MASK32))
    def test_extend_32_matches_struct_semantics(self, value):
        expected = value if value < (1 << 31) else value - (1 << 32)
        assert to_signed64(sign_extend(value, 32)) == expected


class TestFields:
    def test_extract_bits(self):
        assert extract_bits(0b1011_0100, 2, 4) == 0b1101

    def test_extract_bits_validates(self):
        with pytest.raises(ValueError):
            extract_bits(1, -1, 4)

    def test_set_bits(self):
        assert set_bits(0, 4, 4, 0xF) == 0xF0
        assert set_bits(0xFF, 0, 4, 0) == 0xF0

    @given(u64, st.integers(0, 60), st.integers(1, 4), u64)
    def test_set_then_extract(self, value, low, width, field):
        updated = set_bits(value, low, width, field)
        assert extract_bits(updated, low, width) == field & ((1 << width) - 1)


class TestFlip:
    def test_flip_sets_and_clears(self):
        assert flip_bit(0, 3) == 8
        assert flip_bit(8, 3) == 0

    def test_flip_rejects_negative_bit(self):
        with pytest.raises(ValueError):
            flip_bit(0, -1)

    @given(u64, st.integers(0, 63))
    def test_flip_is_involution(self, value, bit):
        assert flip_bit(flip_bit(value, bit), bit) == value

    @given(u64, st.integers(0, 63))
    def test_flip_changes_exactly_one_bit(self, value, bit):
        assert popcount(value ^ flip_bit(value, bit)) == 1


class TestPopcount:
    def test_examples(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(MASK64) == 64

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_bit_is_set(self):
        assert bit_is_set(0b100, 2)
        assert not bit_is_set(0b100, 1)
