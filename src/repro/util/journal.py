"""Append-only JSONL journals and run manifests for campaign durability.

A journal is a plain-text file with one JSON object per line. The first
line is a *manifest* describing the run (campaign level, seed, a stable
digest of the full configuration, and the package version); every later
line is a trial outcome or a per-workload sentinel. The format is chosen
for crash-durability: the writer flushes after every line, so a campaign
killed at any moment loses at most the line being written, and the reader
tolerates exactly that one torn trailing line.

These helpers are campaign-agnostic — :mod:`repro.campaign` layers the
trial/sentinel schema on top.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from typing import Any, IO


class JournalError(Exception):
    """A journal is unreadable or inconsistent with the requested run."""


class JournalTearWarning(UserWarning):
    """A journal ends in a torn line — the residue of an interrupted append.

    The torn fragment is tolerated (dropped on read, truncated before
    append) but surfaced as a warning so an operator can tell the run was
    killed mid-write rather than having completed cleanly.
    """


def config_to_dict(config: Any) -> dict:
    """A JSON-serializable dict for a (possibly nested) config dataclass.

    Fields declared with ``metadata={"omit_default": True}`` are dropped
    while they hold their default value. Config knobs added after journals
    already exist in the wild use this so that manifests, stable digests,
    and golden-cache keys of pre-existing configurations stay byte-identical
    until the new knob is actually turned on.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        raw = _dataclass_items(config)
    elif isinstance(config, dict):
        raw = dict(config)
    else:
        raise TypeError(f"cannot serialize config of type {type(config)!r}")
    return json.loads(json.dumps(raw, sort_keys=True, default=_jsonable))


def _dataclass_items(config: Any) -> dict:
    out: dict[str, Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.metadata.get("omit_default") and value == _field_default(field):
            continue
        out[field.name] = value
    return out


def _field_default(field: dataclasses.Field) -> Any:
    if field.default is not dataclasses.MISSING:
        return field.default
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return field.default_factory()  # type: ignore[misc]
    return dataclasses.MISSING


def _jsonable(value: Any):
    if isinstance(value, tuple):
        return list(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    raise TypeError(f"not JSON-serializable: {value!r}")


def stable_digest(obj: Any) -> str:
    """A hex digest that is stable across processes and Python versions."""
    canonical = json.dumps(obj, sort_keys=True, separators=(",", ":"),
                           default=_jsonable)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def repair_tail(path: str) -> None:
    """Remove a torn trailing line left by an interrupted write.

    Appending after a torn fragment would glue new entries onto it and
    turn a recoverable tail into mid-file corruption, so the writer calls
    this before reopening a journal in append mode. A complete trailing
    line that merely lost its newline gets the newline back instead of
    being dropped.
    """
    if not os.path.exists(path):
        return
    with open(path, "rb+") as handle:
        data = handle.read()
        if not data:
            return
        if data.endswith(b"\n"):
            last_start = data.rfind(b"\n", 0, len(data) - 1) + 1
            tail = data[last_start:-1]
        else:
            last_start = data.rfind(b"\n") + 1
            tail = data[last_start:]
        try:
            json.loads(tail)
            torn = False
        except json.JSONDecodeError:
            torn = True
        if torn:
            handle.truncate(last_start)
        elif not data.endswith(b"\n"):
            handle.write(b"\n")


class JournalWriter:
    """Append JSON entries to a journal file, one flushed line at a time."""

    def __init__(self, path: str, append: bool = False):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if append:
            repair_tail(path)
        self._handle: IO[str] | None = open(path, "a" if append else "w")

    def write(self, entry: dict) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str) -> list[dict]:
    """All complete entries of a journal, oldest first.

    A torn *final* line — the signature of a run killed mid-write — is
    dropped with a :class:`JournalTearWarning`; corruption anywhere else
    raises :class:`JournalError` because it means the file was edited or
    truncated by something other than an interrupted append.
    """
    entries: list[dict] = []
    with open(path) as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                # Torn trailing line from an interrupted write: every
                # complete record before it is still good.
                warnings.warn(
                    f"{path}: dropping a partial final record "
                    f"(interrupted append); {len(entries)} complete "
                    f"entries retained",
                    JournalTearWarning,
                    stacklevel=2,
                )
                break
            raise JournalError(
                f"{path}:{index + 1}: corrupt journal entry"
            ) from None
    return entries
