"""Checkpoint creation, release, and rollback."""

import pytest

from repro.restore.checkpoint import CheckpointManager
from repro.uarch import load_pipeline
from repro.workloads import build_workload


def make_pipeline_with_manager(interval=50, workload="gcc"):
    bundle = build_workload(workload)
    pipeline = load_pipeline(bundle.program, collect_retired=True)
    manager = CheckpointManager(pipeline, interval)
    pipeline.on_retire = manager.note_retirement
    return bundle, pipeline, manager


class TestCreation:
    def test_initial_checkpoint(self):
        _, pipeline, manager = make_pipeline_with_manager()
        assert len(manager.checkpoints) == 1
        assert manager.oldest.retired_count == 0
        assert manager.oldest.resume_pc == pipeline._fetch_pc[0]

    def test_interval_validation(self):
        bundle = build_workload("gcc")
        pipeline = load_pipeline(bundle.program)
        with pytest.raises(ValueError):
            CheckpointManager(pipeline, 0)

    def test_two_live_checkpoints(self):
        _, pipeline, manager = make_pipeline_with_manager(interval=50)
        pipeline.run(2_000)
        assert len(manager.checkpoints) == 2
        gap = (
            manager.newest.retired_count - manager.oldest.retired_count
        )
        assert gap >= 50

    def test_checkpoint_cadence(self):
        _, pipeline, manager = make_pipeline_with_manager(interval=100)
        pipeline.run(3_000)
        # Forced checkpoints (store-buffer pressure) can add extras, so the
        # count is at least the interval-driven number.
        assert manager.created >= pipeline.retired_count // 100

    def test_gated_mode_enabled(self):
        _, pipeline, _ = make_pipeline_with_manager()
        assert pipeline.store_buffer_gated


class TestRollback:
    def test_rollback_restores_architectural_state(self):
        _, pipeline, manager = make_pipeline_with_manager(interval=50)
        pipeline.run(1_500)
        checkpoint = manager.oldest
        expected_regs = list(checkpoint.reg_values)
        manager.rollback()
        assert pipeline.arch_reg_values() == expected_regs
        assert pipeline.retired_count == checkpoint.retired_count
        assert pipeline._fetch_pc[0] == checkpoint.resume_pc

    def test_rollback_discards_younger_checkpoint(self):
        _, pipeline, manager = make_pipeline_with_manager(interval=50)
        pipeline.run(1_500)
        manager.rollback(manager.oldest)
        assert len(manager.checkpoints) == 1

    def test_reexecution_reproduces_program(self):
        bundle, pipeline, manager = make_pipeline_with_manager(interval=100)
        pipeline.run(1_500)
        manager.rollback()
        pipeline.run(1_000_000)
        assert pipeline.halted
        assert bundle.check(pipeline.memory) == []

    def test_rollback_to_released_checkpoint_rejected(self):
        _, pipeline, manager = make_pipeline_with_manager(interval=50)
        pipeline.run(500)
        old = manager.oldest
        pipeline.run(2_000)  # old has been released by now
        if old not in manager.checkpoints:
            with pytest.raises(ValueError):
                manager.rollback(old)

    def test_repeated_rollback_is_idempotent_on_state(self):
        _, pipeline, manager = make_pipeline_with_manager(interval=50)
        pipeline.run(1_500)
        manager.rollback()
        regs_first = pipeline.arch_reg_values()
        manager.rollback()  # same checkpoint again
        assert pipeline.arch_reg_values() == regs_first

    def test_rollback_discards_younger_stores(self):
        bundle, pipeline, manager = make_pipeline_with_manager(
            interval=50, workload="gzip"
        )
        pipeline.run(1_500)
        mark = manager.oldest.storebuf_tail
        manager.rollback()
        assert pipeline.storebuf.total_pushed <= max(
            mark, pipeline.storebuf.total_popped
        )

    def test_total_retired_is_monotonic_across_rollback(self):
        _, pipeline, manager = make_pipeline_with_manager(interval=50)
        pipeline.run(1_500)
        total_before = pipeline.total_retired
        manager.rollback()
        pipeline.run(200)
        assert pipeline.total_retired >= total_before


class TestForcedCheckpoints:
    def test_store_pressure_forces_checkpoints(self):
        # mcf at a long interval stores more than the 64-entry buffer holds.
        bundle = build_workload("mcf")
        pipeline = load_pipeline(bundle.program)
        manager = CheckpointManager(pipeline, 1_000)
        pipeline.on_retire = manager.note_retirement
        pipeline.run(1_000_000)
        assert pipeline.halted
        assert bundle.check(pipeline.memory) == []
        interval_driven = pipeline.retired_count // 1_000 + 1
        assert manager.created > interval_driven
