"""Figure 2 + Table 1: virtual-machine fault injection.

Paper numbers to compare against (Section 3.1):

- average injected fault masked ~59% of the time;
- ~24% of all injections raise an ISA exception within 100 instructions;
- ~8% cause incorrect control flow within the same latency;
- "nearly 80% of the failure inducing faults ... result in an exception or
  control flow violation within 100 instructions".
"""

from repro.faults import ARCH_CATEGORY_DESCRIPTIONS
from repro.faults.arch_campaign import FIGURE2_WINDOWS
from repro.util.tables import format_table

from .conftest import emit


def test_fig2_category_vs_latency(benchmark, arch_campaign):
    result = benchmark.pedantic(lambda: arch_campaign, rounds=1, iterations=1)

    table1 = format_table(
        ["category", "observed error symptom"],
        list(ARCH_CATEGORY_DESCRIPTIONS.items()),
        title="Table 1: Figure 2 category descriptions",
    )
    masked = result.masked_estimate
    coverage = result.failure_coverage(100)
    exception_100 = result.counter(100).proportion("exception")
    cfv_100 = result.counter(100).proportion("cfv")
    headline = format_table(
        ["metric", "paper", "measured"],
        [
            ["masked fraction", "~59%", f"{masked.proportion:.1%} ±{masked.margin:.1%}"],
            ["exception share @100", "~24%", f"{exception_100:.1%}"],
            ["cfv share @100", "~8%", f"{cfv_100:.1%}"],
            ["failure coverage @100 (exc+cfv)", "~80%",
             f"{coverage.proportion:.1%} ±{coverage.margin:.1%}"],
        ],
        title="Figure 2 headline comparison",
    )
    emit(
        "fig2_arch_injection",
        "\n\n".join([table1, result.table(FIGURE2_WINDOWS), headline]),
    )

    # Shape assertions: the paper's qualitative structure must hold.
    assert 0.25 < masked.proportion < 0.75
    assert coverage.proportion > 0.5, "exceptions+cfv must cover most failures"
    assert exception_100 > cfv_100 * 0.8, "exceptions should dominate or rival cfv"
    # Coverage grows with the detection window.
    assert (
        result.failure_coverage(25).proportion
        <= result.failure_coverage(100).proportion
        <= result.failure_coverage(None).proportion
    )
    # The register category must drain away at long latencies.
    assert result.counter(None).proportion("register") < result.counter(
        25
    ).proportion("register") + 1e-9
