"""The "low-hanging fruit" hardened pipeline (Section 5.2.2).

The paper's prior work covered "the most vulnerable portions of our
processor with parity and ECC. In particular, parity was added to the
control word latches within the pipeline, and ECC was added to the register
file and other key data stores ... incurring an overhead of approximately
7% additional state in the execution core."

The default placement mirrors that selectivity rather than blanketing the
machine:

- **ECC** on the SRAM data stores: physical register file, both alias
  tables, the free list, the fetch queue, and the committed-store buffer.
  A single-bit flip is corrected in place; the fault is harmless ("latent
  faults in the register file or alias table that are covered by ECC and
  will not cause data corruption" — the bigger *other* category of
  Figure 6).
- **Parity** on the control word latches of the ROB and scheduler. A flip
  is detected on read and recovered by a pipeline flush and refetch.
- Everything else stays unprotected: load/store queue addresses and data,
  in-flight PCs and targets, ready scoreboards, queue pointers. This is
  the residual vulnerability that ReStore's symptom coverage addresses.
"""

from __future__ import annotations

from repro.uarch.latches import StateField, StateRegistry

# ECC word size and check-bit count (SECDED over 64-bit words), and parity
# granularity for control latches.
ECC_WORD_BITS = 64
ECC_CHECK_BITS = 8
PARITY_GROUP_BITS = 16  # one parity bit per 16-bit control field group

DEFAULT_ECC_STRUCTURES = (
    "prf", "spec_rat", "arch_rat", "freelist", "fetchq", "storebuf",
)
DEFAULT_PARITY_STRUCTURES = ("rob", "sched")


class ProtectionMap:
    """Which (structure, state-class) pairs carry which protection."""

    def __init__(
        self,
        ecc_structures: tuple[str, ...] = DEFAULT_ECC_STRUCTURES,
        parity_structures: tuple[str, ...] = DEFAULT_PARITY_STRUCTURES,
    ):
        self.ecc_structures = set(ecc_structures)
        self.parity_structures = set(parity_structures)

    def protection_of_parts(self, structure: str, state_class: str) -> str | None:
        """"ecc", "parity", or None for (structure, state-class)."""
        if structure in self.ecc_structures and state_class == "ram":
            return "ecc"
        if structure in self.parity_structures and state_class == "ctrl":
            return "parity"
        return None

    def protection_of(self, field: StateField) -> str | None:
        return self.protection_of_parts(field.structure, field.state_class)

    def protected_bits(self, registry: StateRegistry) -> int:
        return sum(
            field.width
            for field in registry.fields
            if self.protection_of(field) is not None
        )

    def unprotected_bits(self, registry: StateRegistry) -> int:
        return registry.total_bits() - self.protected_bits(registry)


def protection_overhead_bits(registry: StateRegistry, pmap: ProtectionMap) -> int:
    """Additional storage the protection scheme costs.

    ECC: 8 check bits per 64 data bits; parity: 1 bit per 16-bit group of
    control state. The paper reports ~7% additional state for its
    placement; this computes ours for comparison.
    """
    ecc_bits = sum(
        field.width
        for field in registry.fields
        if pmap.protection_of(field) == "ecc"
    )
    parity_bits = sum(
        field.width
        for field in registry.fields
        if pmap.protection_of(field) == "parity"
    )
    ecc_overhead = -(-ecc_bits // ECC_WORD_BITS) * ECC_CHECK_BITS
    parity_overhead = -(-parity_bits // PARITY_GROUP_BITS)
    return ecc_overhead + parity_overhead
