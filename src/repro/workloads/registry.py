"""Workload registry and the bundle type generators return."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.program import Program


@dataclass
class WorkloadBundle:
    """A generated workload plus its independently-computed expected outputs.

    ``expected_outputs`` maps data-segment symbol names to the 64-bit values
    the program must have stored there by the time it halts; the test suite
    checks them on both simulators.
    """

    name: str
    program: Program
    expected_outputs: dict[str, int] = field(default_factory=dict)

    def check(self, memory) -> list[str]:
        """Symbols whose memory value does not match the expectation."""
        wrong = []
        for symbol, expected in self.expected_outputs.items():
            address = self.program.symbol(symbol)
            actual = memory.read(address, 8)
            if actual != expected:
                wrong.append(f"{symbol}: expected {expected}, got {actual}")
        return wrong


_GENERATORS: dict[str, Callable[[int, int], WorkloadBundle]] = {}


def workload(name: str):
    """Decorator registering a generator under ``name``."""

    def register(function: Callable[[int, int], WorkloadBundle]):
        if name in _GENERATORS:
            raise ValueError(f"duplicate workload {name!r}")
        _GENERATORS[name] = function
        return function

    return register


def build_workload(name: str, scale: int = 1, seed: int = 2005) -> WorkloadBundle:
    """Generate one workload. ``scale`` stretches the dynamic length."""
    # Import for the side effect of registering all generators.
    from repro.workloads import kernels  # noqa: F401

    if name not in _GENERATORS:
        raise KeyError(f"unknown workload {name!r}; know {sorted(_GENERATORS)}")
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return _GENERATORS[name](scale, seed)


def build_all_workloads(scale: int = 1, seed: int = 2005) -> list[WorkloadBundle]:
    """All seven kernels, in the paper's benchmark order."""
    return [build_workload(name, scale, seed) for name in WORKLOAD_NAMES]


# The paper's seven SPEC2000int benchmarks.
WORKLOAD_NAMES = ("bzip2", "gap", "gcc", "gzip", "mcf", "parser", "vortex")

# Optional extra kernels for widening campaigns beyond the paper's set.
EXTRA_WORKLOAD_NAMES = ("crafty", "twolf")
