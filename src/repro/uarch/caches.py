"""Cache, TLB, and MSHR timing models.

These model hit/miss behaviour only — data always comes from the memory
image, since an L1 in a single-core model is always coherent with it. They
exist for three reasons: realistic load/fetch latencies, the cache/TLB
*miss symptoms* discussed in Section 3.3 (rare-in-steady-state events that
a soft error can trigger, candidates for symptom-based detection), and —
when the pipeline is built with ``memhier_targets`` — a memory-hierarchy
fault surface: cache tag/valid/LRU state and the MSHR file register in the
:class:`~repro.uarch.latches.StateRegistry` so campaigns can flip them.

Because the caches are tag-only (data never lives here), a corrupted tag,
valid, or LRU bit can only perturb *timing* — spurious misses, spurious
hits on the wrong line's latency, structural stalls — never architectural
values. That is exactly the corruption class the miss-rate-spike and
stall-outlier symptom detectors exist to catch. By default (the paper's
configuration) none of this state registers: the paper excludes caches
from injection ("caches are easily protected by ECC or parity").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.uarch.latches import StateRegistry

_ADDRESS_BITS = 64


def _log2_or_none(value: int) -> int | None:
    if value > 0 and not (value & (value - 1)):
        return value.bit_length() - 1
    return None


def _index_bits(slots: int) -> int:
    """Bits needed to name one of ``slots`` entries (>= 1)."""
    return max(1, (slots - 1).bit_length())


class SetAssociativeCache:
    """Tag-only set-associative cache with LRU replacement.

    State lives in three flat registerable arrays (``sets * ways`` slots
    each, set-major): ``_tags``, ``_valid``, and ``_order``. The LRU order
    array holds way numbers, most-recent first within each set's span — the
    hardware's per-set recency stack encoded as one latch bank. Arrays are
    mutated in place only, so registry closures and forks stay valid.
    """

    def __init__(self, sets: int, ways: int, line_bytes: int):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self.line_bytes = line_bytes
        slots = sets * ways
        self._tags: list[int] = [0] * slots
        self._valid: list[int] = [0] * slots
        # LRU order, set-major: _order[set*ways + pos] is a way number,
        # pos 0 = most recently used.
        self._order: list[int] = list(range(ways)) * sets
        self.hits = 0
        self.misses = 0
        line_bits = _log2_or_none(line_bytes)
        set_bits = _log2_or_none(sets)
        if line_bits is not None and set_bits is not None:
            self.tag_bits = max(1, _ADDRESS_BITS - line_bits - set_bits)
        else:
            self.tag_bits = _ADDRESS_BITS
        self._tag_mask = (1 << self.tag_bits) - 1
        self.order_bits = _index_bits(ways)

    def _set_tag(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.sets, (line // self.sets) & self._tag_mask

    def access(self, address: int) -> bool:
        """Access a line; returns True on hit. Misses fill (allocate)."""
        set_index, tag = self._set_tag(address)
        base = set_index * self.ways
        ways = self.ways
        tags = self._tags
        valid = self._valid
        order = self._order
        for position in range(ways):
            way = order[base + position]
            # An injected order bit can name a way outside the set; such a
            # slot is unreachable until the position is refilled.
            if way >= ways:
                continue
            if valid[base + way] and tags[base + way] == tag:
                if position:  # already MRU otherwise; moving is a no-op
                    for index in range(base + position, base, -1):
                        order[index] = order[index - 1]
                    order[base] = way
                self.hits += 1
                return True
        # Miss: replace the LRU way (clamped in case of a corrupted entry).
        victim = order[base + ways - 1]
        if victim >= ways:
            victim = ways - 1
        for index in range(base + ways - 1, base, -1):
            order[index] = order[index - 1]
        order[base] = victim
        tags[base + victim] = tag
        valid[base + victim] = 1
        self.misses += 1
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or filling."""
        set_index, tag = self._set_tag(address)
        base = set_index * self.ways
        for way in range(self.ways):
            if self._valid[base + way] and self._tags[base + way] == tag:
                return True
        return False

    def register_state(self, registry: "StateRegistry", structure: str) -> None:
        """Expose tag/valid/LRU arrays as injectable ``mem``-class state."""
        registry.register_list(
            structure, "mem", f"{structure}.tag", self._tags, self.tag_bits
        )
        registry.register_list(
            structure, "mem", f"{structure}.valid", self._valid, 1
        )
        registry.register_list(
            structure, "mem", f"{structure}.lru", self._order, self.order_bits
        )


class Tlb:
    """Fully-associative TLB with FIFO replacement.

    The page list is variable-length (a Python-level FIFO), so it has no
    fixed latch encoding to register; TLBs stay outside the injection
    surface even under ``memhier_targets`` and are documented as such.
    """

    def __init__(self, entries: int, page_shift: int = 13):
        self.entries = entries
        self.page_shift = page_shift
        self._pages: list[int] = []
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate; returns True on hit. Misses fill."""
        page = address >> self.page_shift
        if page in self._pages:
            self.hits += 1
            return True
        self.misses += 1
        self._pages.append(page)
        if len(self._pages) > self.entries:
            self._pages.pop(0)
        return False


class MshrFile:
    """Miss Status Holding Registers: outstanding D-cache miss tracking.

    One entry per in-flight miss: a valid bit and the miss address. A fill
    completion releases the entry holding its address; a fill that finds no
    matching entry is a *spurious memory op* (the corruption signature a
    flipped valid or address bit produces). A full file is a structural
    hazard — the pipeline charges an extra miss penalty, which is how a
    corrupted occupancy becomes a visible stall symptom.
    """

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError(f"mshr entries must be >= 1, got {entries}")
        self.entries = entries
        self._valid: list[int] = [0] * entries
        self._addr: list[int] = [0] * entries
        self.allocations = 0
        self.overflows = 0

    def occupancy(self) -> int:
        return sum(self._valid)

    def is_full(self) -> bool:
        return self.occupancy() >= self.entries

    def allocate(self, address: int) -> int | None:
        """Claim a free entry for a miss to ``address`` (None when full)."""
        for slot in range(self.entries):
            if not self._valid[slot]:
                self._valid[slot] = 1
                self._addr[slot] = address & ((1 << _ADDRESS_BITS) - 1)
                self.allocations += 1
                return slot
        self.overflows += 1
        return None

    def release(self, address: int) -> bool:
        """Complete the fill for ``address``; False = no matching entry."""
        for slot in range(self.entries):
            if self._valid[slot] and self._addr[slot] == address:
                self._valid[slot] = 0
                self._addr[slot] = 0
                return True
        return False

    def clear(self) -> None:
        """Discard all outstanding misses (pipeline flush)."""
        for slot in range(self.entries):
            self._valid[slot] = 0
            self._addr[slot] = 0

    def register_state(self, registry: "StateRegistry", structure: str = "mshr") -> None:
        registry.register_list(
            structure, "mem", f"{structure}.valid", self._valid, 1
        )
        registry.register_list(
            structure, "mem", f"{structure}.addr", self._addr, _ADDRESS_BITS
        )
