"""Symptom detector framework."""

import pytest

from repro.restore.symptoms import (
    MEMHIER_DETECTOR_NAMES,
    CacheMissSymptomDetector,
    ExceptionSymptomDetector,
    HighConfidenceMispredictDetector,
    MissRateSpikeDetector,
    SpuriousMemopDetector,
    StallOutlierDetector,
    WatchdogSymptomDetector,
    build_memhier_detectors,
    default_detectors,
)


class TestBasicDetectors:
    def test_exception_detector_fires(self):
        detector = ExceptionSymptomDetector()
        assert detector.observe("exception", (1, 0x100))
        assert not detector.observe("hc_mispredict", None)
        assert detector.observed == 1 and detector.triggered == 1

    def test_hc_mispredict_detector(self):
        detector = HighConfidenceMispredictDetector()
        assert detector.observe("hc_mispredict", (0x100, 3))
        assert not detector.observe("mispredict", (0x100, 3))

    def test_watchdog_detector(self):
        detector = WatchdogSymptomDetector()
        assert detector.observe("deadlock", None)

    def test_defaults(self):
        kinds = set()
        for detector in default_detectors():
            kinds.update(detector.kinds)
        assert kinds == {"exception", "hc_mispredict", "deadlock"}


class TestCacheMissDetector:
    def test_threshold_one_fires_immediately(self):
        detector = CacheMissSymptomDetector(threshold=1)
        assert detector.observe("dcache_miss", 100)

    def test_burst_threshold(self):
        detector = CacheMissSymptomDetector(threshold=3, window=50)
        assert not detector.observe("dcache_miss", 100)
        assert not detector.observe("dcache_miss", 110)
        assert detector.observe("dcache_miss", 120)

    def test_window_expiry(self):
        detector = CacheMissSymptomDetector(threshold=2, window=10)
        assert not detector.observe("dcache_miss", 100)
        # Far outside the window: the counter effectively restarts.
        assert not detector.observe("dcache_miss", 500)

    def test_counts_misses_of_selected_kinds_only(self):
        detector = CacheMissSymptomDetector(kinds=("dtlb_miss",), threshold=1)
        assert not detector.observe("dcache_miss", 1)
        assert detector.observe("dtlb_miss", 1)


class TestRollbackReset:
    def test_base_detector_hook_is_a_no_op(self):
        for detector in default_detectors():
            detector.on_rollback(0)  # must exist and not raise

    def test_cache_window_discards_positions_past_rollback(self):
        """Pre-rollback misses sit at *higher* positions than anything the
        re-execution produces; the >= cutoff prune alone would keep them
        forever and inflate every later burst count."""
        detector = CacheMissSymptomDetector(threshold=3, window=50)
        assert not detector.observe("dcache_miss", 480)
        assert not detector.observe("dcache_miss", 490)
        # Rollback rewinds the architectural position to 400.
        detector.on_rollback(400)
        assert detector._recent == []
        # A single post-rollback miss must not complete the stale burst.
        assert not detector.observe("dcache_miss", 410)

    def test_rollback_keeps_observations_at_or_before_restore_point(self):
        detector = CacheMissSymptomDetector(threshold=3, window=100)
        assert not detector.observe("dcache_miss", 395)
        assert not detector.observe("dcache_miss", 450)
        detector.on_rollback(400)
        assert detector._recent == [395]
        # The surviving pre-checkpoint miss still counts toward a burst.
        assert not detector.observe("dcache_miss", 405)
        assert detector.observe("dcache_miss", 410)


class TestPositionKeyedPayloads:
    """Cache/TLB symptom payloads are (retired_position, pc) tuples.

    Regression: the pipeline used to hand the detector a bare *PC* (or a
    tuple), and ``should_rollback`` coerced any non-int payload to
    position 0 — so every miss landed in the same window and bursts fired
    spuriously regardless of how far apart the misses really were.
    """

    def test_tuple_payloads_window_by_position_not_pc(self):
        detector = CacheMissSymptomDetector(threshold=2, window=10)
        # Two misses at the *same PC* but 400 retired instructions apart:
        # position-keyed windowing must not call this a burst. The old
        # coerce-to-zero behavior stacked both at position 0 and fired.
        assert not detector.observe("dcache_miss", (100, 0x4040))
        assert not detector.observe("dcache_miss", (500, 0x4040))

    def test_tuple_payloads_close_together_still_fire(self):
        detector = CacheMissSymptomDetector(threshold=2, window=10)
        assert not detector.observe("dcache_miss", (100, 0x4040))
        assert detector.observe("dcache_miss", (105, 0x8090))

    def test_bare_int_positions_stay_accepted(self):
        detector = CacheMissSymptomDetector(threshold=1)
        assert detector.observe("dcache_miss", 100)

    @pytest.mark.parametrize("payload", [
        None,
        "0x4040",
        4.5,
        True,
        (100,),
        (100, 0x40, 3),
        (100, "pc"),
        (True, 0x40),
        [100, 0x40],
    ])
    def test_malformed_payloads_raise_instead_of_coercing(self, payload):
        detector = CacheMissSymptomDetector(threshold=1)
        with pytest.raises(TypeError, match="malformed"):
            detector.observe("dcache_miss", payload)


class TestMissRateSpikeDetector:
    def _warm(self, detector, start=0, count=20, gap=50):
        """Feed a steady miss stream: one miss every ``gap`` instructions."""
        position = start
        for _ in range(count):
            assert not detector.observe("dcache_miss", (position, 0x100))
            position += gap
        return position

    def test_steady_rate_never_fires(self):
        detector = MissRateSpikeDetector(window=200, multiple=4.0)
        self._warm(detector, count=50)

    def test_burst_above_baseline_fires(self):
        detector = MissRateSpikeDetector(window=200, multiple=4.0)
        position = self._warm(detector)
        # A corrupted tag array: misses every instruction.
        fired = False
        for offset in range(40):
            if detector.observe("dcache_miss", (position + offset, 0x200)):
                fired = True
                break
        assert fired

    def test_no_firing_during_warmup(self):
        detector = MissRateSpikeDetector(warmup=8)
        for position in range(0, 8):
            assert not detector.observe("dcache_miss", (position, 0x100))

    def test_rollback_prunes_future_but_keeps_baseline(self):
        detector = MissRateSpikeDetector()
        self._warm(detector)
        baseline = detector.baseline
        detector.on_rollback(100)
        assert detector.baseline == baseline
        assert all(p <= 100 for p in detector._recent)
        assert detector._last_position <= 100

    def test_watches_all_four_miss_kinds(self):
        assert set(MissRateSpikeDetector().kinds) == {
            "dcache_miss", "dtlb_miss", "icache_miss", "itlb_miss"
        }


class TestStallOutlierDetector:
    def test_ordinary_streak_does_not_fire(self):
        detector = StallOutlierDetector(baseline_cycles=32, multiple=4.0)
        assert not detector.observe("stall_streak", (100, 64, 0x4000))

    def test_outlier_streak_fires(self):
        detector = StallOutlierDetector(baseline_cycles=32, multiple=4.0)
        assert detector.observe("stall_streak", (100, 129, 0x4000))

    def test_boundary_is_exclusive(self):
        detector = StallOutlierDetector(baseline_cycles=32, multiple=4.0)
        assert not detector.observe("stall_streak", (100, 128, 0x4000))

    def test_malformed_payload_raises(self):
        detector = StallOutlierDetector()
        with pytest.raises(TypeError, match="malformed"):
            detector.observe("stall_streak", (100, 64))


class TestSpuriousMemopDetector:
    def test_every_event_fires(self):
        detector = SpuriousMemopDetector()
        assert detector.observe("spurious_memop", (100, 0x2000))
        assert detector.triggered == 1

    def test_malformed_payload_raises(self):
        detector = SpuriousMemopDetector()
        with pytest.raises(TypeError, match="malformed"):
            detector.observe("spurious_memop", 100)


class TestBuildMemhierDetectors:
    def test_builds_by_name_in_order(self):
        detectors = build_memhier_detectors(MEMHIER_DETECTOR_NAMES)
        assert [d.name for d in detectors] == list(MEMHIER_DETECTOR_NAMES)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown detectors"):
            build_memhier_detectors(("miss_spike", "nope"))
